"""Conformance tests for the query-service layer (`repro.server`).

Two contracts:

* **Equivalence** — session query answers are exactly the model of the
  pinned snapshot: bit-identical to a from-scratch evaluation of the
  database at that version, whether the query runs set-at-a-time through
  the plan executor or on the tuple solver.
* **Structured failure** — every error path (parse error, retired
  version, oversized batch, unsafe query, closed session, unknown
  command) returns a :class:`Response` with a stable ``code`` and leaves
  the shared model fully usable.
"""

import socket
import time

import pytest

from repro import parse_program
from repro.core import atom, const
from repro.engine import Database, Evaluator
from repro.engine.setops import with_set_builtins
from repro.server import (
    Backoff,
    E_BATCH,
    E_CLOSED,
    E_CLOSING,
    E_COMMAND,
    E_NOT_YET,
    E_PARSE,
    E_RETIRED,
    E_UNKNOWN_VERSION,
    E_UNSAFE,
    LineClient,
    QueryService,
    Response,
    run_in_thread,
)

TC_SOURCE = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

STRAT_SOURCE = TC_SOURCE + """
n(a). n(b). n(c).
iso(X) :- n(X), not t(X, X).
"""


def service(source=TC_SOURCE, **kw):
    return QueryService(source, **kw)


def scratch_relation(source, facts, pred):
    db = Database()
    for spec in facts:
        db.add(*spec)
    model = Evaluator(
        parse_program(source), db, builtins=with_set_builtins()
    ).run()
    return model.relation(pred)


class TestSessionQueries:
    def test_pattern_query_matches_scratch(self):
        svc = service()
        s = svc.open_session()
        for u, v in [("a", "b"), ("b", "c"), ("c", "d")]:
            s.assert_fact(f"e({u}, {v})")
        got = {tuple(str(t) for t in row)
               for row in s.query("t(a, X)").rows}
        want = {(v,) for u, v in scratch_relation(
            TC_SOURCE,
            [("e", "a", "b"), ("e", "b", "c"), ("e", "c", "d")], "t",
        ) if u == "a"}
        assert got == want
        svc.shutdown()

    def test_conjunctive_query(self):
        svc = service()
        s = svc.open_session()
        for u, v in [("a", "b"), ("b", "a"), ("b", "c")]:
            s.assert_fact(f"e({u}, {v})")
        result = s.query("t(X, Y), e(Y, X)")
        assert ("X", "Y") == result.vars
        rows = {tuple(str(t) for t in r) for r in result.rows}
        # t(X,Y) ∧ e(Y,X): the two orientations of the a↔b cycle (c has
        # no outgoing edge, so t(c, b) never holds).
        assert rows == {("a", "b"), ("b", "a")}
        svc.shutdown()

    def test_query_through_negation_stratum(self):
        svc = service(STRAT_SOURCE)
        s = svc.open_session()
        s.assert_fact("e(a, a)")
        got = {str(r[0]) for r in s.query("iso(X)").rows}
        assert got == {"b", "c"}
        svc.shutdown()

    def test_ground_query_truth(self):
        svc = service()
        s = svc.open_session()
        s.assert_fact("e(a, b)")
        assert s.query("t(a, b)").truth
        assert not s.query("t(b, a)").truth
        svc.shutdown()

    def test_plan_and_tuple_paths_agree(self):
        facts = [("e", f"v{i}", f"v{i+1}") for i in range(12)]
        answers = []
        for compile_plans in (True, False):
            from repro.engine.evaluation import EvalOptions

            svc = QueryService(
                TC_SOURCE,
                options=EvalOptions(compile_plans=compile_plans),
            )
            s = svc.open_session()
            for spec in facts:
                s.assert_fact(f"{spec[0]}({spec[1]}, {spec[2]})")
            answers.append([
                tuple(str(t) for t in r)
                for r in s.query("t(v0, X)").rows
            ])
            svc.shutdown()
        assert answers[0] == answers[1]


class TestWriteBatches:
    def test_immediate_writes_publish_versions(self):
        svc = service()
        s = svc.open_session()
        r1 = s.execute("+e(a, b).")
        r2 = s.execute("+e(b, c).")
        assert r1.version == 2 and r2.version == 3
        assert s.execute("-e(b, c).").version == 4
        svc.shutdown()

    def test_batch_commit_is_one_version(self):
        svc = service()
        s = svc.open_session()
        s.execute(":begin")
        for i in range(5):
            assert s.execute(f"+e(v{i}, v{i+1}).").data["staged"] == i + 1
        assert svc.model.version == 1          # nothing published yet
        r = s.execute(":commit")
        assert r.ok and r.version == 2 and r.data["applied"] == 5
        svc.shutdown()

    def test_read_your_writes_flushes_pending(self):
        svc = service()
        s = svc.open_session()
        s.execute(":begin")
        s.execute("+e(a, b).")
        s.execute("+e(b, c).")
        r = s.execute("?- t(a, c).")
        assert r.ok and r.data["truth"] and r.version == 2
        svc.shutdown()

    def test_other_sessions_never_see_pending(self):
        svc = service()
        writer, reader = svc.open_session(), svc.open_session()
        writer.execute(":begin")
        writer.execute("+e(a, b).")
        assert not reader.execute("?- e(a, b).").data["truth"]
        writer.execute(":commit")
        assert reader.execute("?- e(a, b).").data["truth"]
        svc.shutdown()

    def test_abort_discards(self):
        svc = service()
        s = svc.open_session()
        s.execute(":begin")
        s.execute("+e(a, b).")
        assert s.execute(":abort").data["dropped"] == 1
        assert not s.execute("?- e(a, b).").data["truth"]
        svc.shutdown()


class TestTimeTravel:
    def test_at_reads_old_version_and_latest_returns(self):
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")                 # version 2
        s.execute("+e(b, c).")                 # version 3
        assert s.execute(":at 2").ok
        assert not s.execute("?- t(a, c).").data["truth"]
        assert s.execute(":latest").ok
        assert s.execute("?- t(a, c).").data["truth"]
        svc.shutdown()

    def test_noop_write_reports_zero_applied(self):
        svc = service()
        s = svc.open_session()
        assert s.execute("+e(a, b).").data["applied"] == 1
        dup = s.execute("+e(a, b).")
        assert dup.ok and dup.data["applied"] == 0
        assert dup.version == 2                # no new version published
        s.execute(":begin")
        s.execute("+e(a, b).")                 # nets to nothing
        assert s.execute(":commit").data["applied"] == 0
        svc.shutdown()

    def test_at_pins_against_retirement(self):
        """A version a session reads via ``:at`` must not retire out from
        under it while more writes land."""
        svc = service(keep_versions=2)
        s = svc.open_session()
        s.execute("+e(a, b).")                 # version 2
        assert s.execute(":at 2").ok
        for i in range(5):                     # would retire v2 if unpinned
            svc.apply_delta(adds=[("e", f"n{i}", f"m{i}")])
        r = s.execute("?- e(a, b).")
        assert r.ok and r.version == 2 and r.data["truth"]
        s.execute(":latest")                   # releases the pin
        assert not s.execute(":at 2").ok       # now genuinely retired
        svc.shutdown()

    def test_version_report(self):
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")
        data = s.execute(":version").data
        assert data["latest"] == 2 and data["reading"] == 2
        svc.shutdown()

    def test_at_beyond_latest_is_unknown_version(self):
        """``:at N`` for a version that was never created (beyond
        ``latest``, not retired) is its own structured error — on a
        leader the version cannot exist anywhere, so it is not
        retryable."""
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")                 # latest == 2
        r = s.execute(":at 99")
        assert not r.ok and r.code == E_UNKNOWN_VERSION
        assert r.data["latest"] == 2
        # The session still follows the head afterwards.
        assert s.execute("?- e(a, b).").data["truth"]
        assert s.execute(":version").data["reading"] == 2
        svc.shutdown()

    def test_at_beyond_applied_on_follower_is_retryable(self, tmp_path):
        """The same probe against a follower is ``not_yet_applied``:
        the version may exist upstream, so the client can wait-or-retry
        (and ``:sync`` is the wait)."""
        from repro.replication import FollowerService, ReplicationHub

        svc = QueryService(
            TC_SOURCE, data_dir=tmp_path / "leader", fsync="never",
            checkpoint_every=None,
        )
        ReplicationHub.attach(svc)
        with run_in_thread(svc) as h:
            f = FollowerService(
                h.addr, tmp_path / "f", fsync="never",
                checkpoint_every=None, backoff_initial=0.02,
                read_timeout=0.25,
            )
            fsvc = f.start()
            try:
                s = fsvc.open_session()
                r = s.execute(":at 99")
                assert not r.ok and r.code == E_NOT_YET
                assert r.data["retryable"] is True
                assert isinstance(r.data["latest"], int)
            finally:
                f.stop()
        svc.shutdown()


class TestErrorPaths:
    def test_parse_error_is_structured_and_harmless(self):
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")
        bad = s.execute("?- t(a")
        assert not bad.ok and bad.code == E_PARSE
        bad_fact = s.execute("+e(a")
        assert not bad_fact.ok and bad_fact.code == E_PARSE
        # The model survives untouched.
        assert s.execute("?- e(a, b).").data["truth"]
        assert svc.model.version == 2
        svc.shutdown()

    def test_non_ground_fact_is_structured(self):
        svc = service()
        s = svc.open_session()
        r = s.execute("+e(a, X).")
        assert not r.ok and "not ground" in r.error
        svc.shutdown()

    def test_retired_version_is_structured(self):
        svc = service(keep_versions=2)
        s = svc.open_session()
        for i in range(4):
            s.execute(f"+e(n{i}, m{i}).")
        r = s.execute(":at 1")
        assert not r.ok and r.code == E_RETIRED
        # Session still follows the head afterwards.
        assert s.execute("?- e(n0, m0).").ok
        svc.shutdown()

    def test_oversized_batch_is_structured(self):
        svc = service(max_batch=3)
        s = svc.open_session()
        s.execute(":begin")
        for i in range(3):
            assert s.execute(f"+e(a{i}, b{i}).").ok
        r = s.execute("+e(a3, b3).")
        assert not r.ok and r.code == E_BATCH
        # The staged batch itself is still intact and committable.
        assert s.execute(":commit").data["applied"] == 3
        svc.shutdown()

    def test_unsafe_query_is_structured(self):
        svc = service(STRAT_SOURCE)
        s = svc.open_session()
        r = s.execute("?- not t(X, Y).")
        assert not r.ok and r.code == E_UNSAFE
        svc.shutdown()

    def test_unknown_command(self):
        svc = service()
        s = svc.open_session()
        r = s.execute(":frobnicate")
        assert not r.ok and r.code == E_COMMAND
        svc.shutdown()

    def test_closed_session_is_structured(self):
        svc = service()
        s = svc.open_session()
        s.close()
        r = s.execute("?- e(a, b).")
        assert not r.ok and r.code == E_CLOSED
        svc.shutdown()

    def test_close_discards_pending_writes(self):
        svc = service()
        s = svc.open_session()
        s.execute(":begin")
        s.execute("+e(a, b).")
        s.close()
        other = svc.open_session()
        assert not other.execute("?- e(a, b).").data["truth"]
        assert svc.model.version == 1
        svc.shutdown()

    def test_bad_clause_leaves_program_unchanged(self):
        svc = service()
        s = svc.open_session()
        r = s.execute("p(X) :-")
        assert not r.ok and r.code == E_PARSE
        good = s.execute("p(X) :- e(X, X).")
        assert good.ok
        s.execute("+e(a, a).")
        assert s.execute("?- p(a).").data["truth"]
        svc.shutdown()


class TestServiceFrontEnd:
    def test_submit_runs_on_pool(self):
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")
        future = svc.submit(s, "?- e(a, b).")
        assert future.result(timeout=10).data["truth"]
        svc.shutdown()

    def test_session_accounting(self):
        svc = service()
        s1, s2 = svc.open_session(), svc.open_session()
        assert svc.session_count() == 2
        s1.close()
        assert svc.session_count() == 1
        svc.shutdown()
        assert svc.session_count() == 0

    def test_stats_include_closed_sessions(self):
        svc = service()
        s = svc.open_session()
        s.execute("+e(a, b).")
        s.execute("?- e(a, b).")
        s.close()
        data = svc.stats_data()
        assert data["queries"] == 1 and data["writes"] == 1
        svc.shutdown()


class TestProtocol:
    def test_round_trip_and_json_shape(self):
        svc = service()
        with run_in_thread(svc) as h, LineClient(h.host, h.port) as c:
            r = c.send("+e(a, b).")
            assert r.ok and r.kind == "write"
            r = c.query("t(a, X)")
            assert r.data["rows"] == [{"X": "b"}]
            r = c.send("?- t(a")
            assert not r.ok and r.code == E_PARSE
            assert c.send(":quit").kind == "bye"
        svc.shutdown()

    def test_disconnect_mid_batch_does_not_poison(self):
        svc = service()
        with run_in_thread(svc) as h:
            with LineClient(h.host, h.port) as c1:
                c1.send(":begin")
                c1.send("+e(x, y).")
            # c1 dropped without commit; a new client sees nothing.
            with LineClient(h.host, h.port) as c2:
                assert not c2.query("e(x, y)").data["truth"]
        svc.shutdown()

    def test_concurrent_clients_are_isolated(self):
        svc = service()
        with run_in_thread(svc) as h:
            clients = [LineClient(h.host, h.port) for _ in range(4)]
            try:
                clients[0].send("+e(a, b).")
                for c in clients:
                    assert c.query("e(a, b)").data["truth"]
                versions = {c.send(":version").data["latest"]
                            for c in clients}
                assert versions == {2}
            finally:
                for c in clients:
                    c.close()
        svc.shutdown()

    def test_response_json_round_trip(self):
        r = Response(ok=True, kind="answers", data={"x": 1}, version=3)
        assert Response.from_json(r.to_json()) == r


class TestClientReconnect:
    def test_default_is_single_attempt(self):
        with pytest.raises(ConnectionError, match="after 1 attempt"):
            LineClient("127.0.0.1", 1).send(":version")

    def test_bounded_attempts_are_counted(self):
        start = time.monotonic()
        with pytest.raises(ConnectionError, match="after 3 attempt"):
            LineClient(
                "127.0.0.1", 1, max_attempts=3,
                backoff_initial=0.01, backoff_max=0.05,
            ).send(":version")
        assert time.monotonic() - start < 5.0   # bounded, not unbounded

    def test_send_retries_across_server_restart(self):
        # Pin a port so a second server can come back on the same address.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        svc1 = service()
        h1 = run_in_thread(svc1, port=port)
        client = LineClient(
            "127.0.0.1", port, max_attempts=5,
            backoff_initial=0.02, backoff_max=0.2,
        )
        try:
            assert client.send("+e(a, b).").ok
            h1.stop()
            svc1.shutdown()
            svc2 = service()
            with run_in_thread(svc2, port=port):
                # The dead connection is torn down and rebuilt under the
                # same send() call — no exception reaches the caller.
                assert client.send(":version").ok
            svc2.shutdown()
        finally:
            client.close()

    def test_close_wakes_backoff_sleep_promptly(self):
        """close() during a reconnect backoff must interrupt the sleep:
        the retry loop waits on an Event, not time.sleep, so a client
        configured with a 30 s backoff still tears down in milliseconds."""
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        client = LineClient(
            "127.0.0.1", port, max_attempts=5,
            backoff_initial=30.0, backoff_max=30.0,
        )
        conn, _ = listener.accept()
        conn.close()
        listener.close()

        elapsed: list[float] = []

        def worker() -> None:
            start = time.monotonic()
            with pytest.raises(ConnectionError):
                client.send(":version")
            elapsed.append(time.monotonic() - start)

        t = threading.Thread(target=worker)
        t.start()
        time.sleep(0.3)              # let send() enter its backoff sleep
        client.close()
        t.join(timeout=5.0)
        assert not t.is_alive()      # woke immediately, not after 30 s
        assert elapsed and elapsed[0] < 5.0

    def test_backoff_is_bounded_with_jitter(self):
        b = Backoff(initial=0.1, maximum=1.0, factor=2.0)
        delays = [b.next_delay() for _ in range(8)]
        for i, d in enumerate(delays):
            ceiling = min(1.0, 0.1 * 2.0 ** i)
            assert ceiling / 2 <= d <= ceiling
        b.reset()
        assert b.next_delay() <= 0.1


class TestGracefulShutdown:
    def test_idle_connection_gets_server_closing(self):
        """stop() drains and notifies: an idle client receives a
        structured ``server_closing`` response instead of a dropped
        socket mid-line."""
        svc = service()
        h = run_in_thread(svc)
        raw = socket.create_connection((h.host, h.port), timeout=10)
        try:
            raw.sendall(b"+e(a, b).\n")
            reply = raw.makefile().readline()
            assert Response.from_json(reply).ok
            h.stop()
            closing = raw.makefile().readline()
            r = Response.from_json(closing)
            assert not r.ok and r.code == E_CLOSING
        finally:
            raw.close()
            svc.shutdown()

    def test_stop_timeout_is_configurable(self):
        svc = service()
        h = run_in_thread(svc, stop_timeout=2.0)
        with LineClient(h.host, h.port) as c:
            assert c.send(":version").ok
        h.stop()
        h.stop()                           # idempotent
        svc.shutdown()

    def test_in_flight_response_completes_before_close(self):
        svc = service()
        h = run_in_thread(svc)
        with LineClient(h.host, h.port) as c:
            for i in range(20):
                assert c.send(f"+e(v{i}, v{i+1}).").ok
            # Stop while the connection is live: the last acknowledged
            # write must be durable in the model, not dropped mid-line.
            h.stop()
        assert svc.model.version == 21
        svc.shutdown()
