"""Tests for the ``lps`` command-line front end."""

import pytest

from repro.repl.cli import main


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.lps"
    path.write_text(
        "edge(a, b). edge(b, c).\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- edge(X, Y), path(Y, Z).\n"
    )
    return str(path)


class TestRun:
    def test_run_prints_model(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "path(a, c)." in out
        assert "edge(a, b)." in out

    def test_run_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.lps"
        bad.write_text("p(a")
        assert main(["run", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_query_bindings(self, program_file, capsys):
        assert main(["query", program_file, "path(a, W)"]) == 0
        out = capsys.readouterr().out
        assert "W = b" in out and "W = c" in out

    def test_query_ground_true(self, program_file, capsys):
        main(["query", program_file, "path(a, c)"])
        assert "true" in capsys.readouterr().out

    def test_query_false(self, program_file, capsys):
        main(["query", program_file, "path(c, a)"])
        assert "false" in capsys.readouterr().out

    def test_query_with_sets(self, tmp_path, capsys):
        path = tmp_path / "sets.lps"
        path.write_text(
            "s({1, 2}). s({3}).\n"
            "disj(X, Y) :- s(X), s(Y), "
            "forall A in X (forall B in Y (A != B)).\n"
        )
        main(["query", str(path), "disj({1, 2}, {3})"])
        assert "true" in capsys.readouterr().out


class TestRepl:
    def test_repl_session(self, monkeypatch, capsys):
        lines = iter([
            "p(a).",
            "q(X) :- p(X).",
            "?- q(a).",
            ":model",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "true" in out
        assert "q(a)." in out

    def test_repl_reports_errors(self, monkeypatch, capsys):
        lines = iter(["p(a", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        assert "error" in capsys.readouterr().err

    def test_repl_fact_churn_maintains_model(self, monkeypatch, capsys):
        lines = iter([
            "edge(a, b).",
            "path(X, Y) :- edge(X, Y).",
            "path(X, Z) :- edge(X, Y), path(Y, Z).",
            "+edge(b, c).",
            "?- path(a, c).",
            ":stats",
            "-edge(b, c).",
            "?- path(a, c).",
            "+edge(b, c).",
            "+edge(b, c).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "added." in out
        assert "removed." in out
        assert "no change." in out          # second +edge(b, c).
        assert "strategy=incremental" in out
        # path(a, c): true after insert, false after delete.
        assert "true" in out and "false" in out

    def test_repl_plan_command(self, monkeypatch, capsys):
        lines = iter([
            ":plan t(X, Z) :- e(X, Y), t(Y, Z).",
            ":plan subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "Join[Y]" in out
        assert "Scan[e(X, Y)]" in out
        assert "Scan[t(Y, Z)]" in out
        assert "tuple-mode" in out          # the quantified clause

    def test_repl_stats_include_executor_counters(self, monkeypatch, capsys):
        lines = iter([
            "path(X, Y) :- edge(X, Y).",
            "path(X, Z) :- edge(X, Y), path(Y, Z).",
            *(f"+edge(v{i}, v{i+1})." for i in range(10)),
            ":stats",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "strategy=incremental" in out
        assert "executor:" in out
        assert "batches" in out
        assert "Scan" in out and "Join" in out

    def test_repl_rejects_non_ground_fact(self, monkeypatch, capsys):
        lines = iter(["p(a).", "+p(X).", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        assert "not ground" in capsys.readouterr().err

    def test_repl_clause_after_facts_keeps_fact_store(
        self, monkeypatch, capsys
    ):
        lines = iter([
            "+edge(a, b).",
            "path(X, Y) :- edge(X, Y).",
            "?- path(a, b).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "true" in out


class TestReplServiceParity:
    def test_repl_conjunctive_query(self, monkeypatch, capsys):
        """The REPL answers conjunctive goals through the same session
        query path as the TCP server (parse → plan → execute)."""
        lines = iter([
            "edge(a, b). edge(b, a). edge(b, c).",
            "path(X, Y) :- edge(X, Y).",
            "path(X, Z) :- edge(X, Y), path(Y, Z).",
            "?- path(X, Y), edge(Y, X).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "X = a, Y = b" in out
        assert "X = b, Y = a" in out

    def test_repl_queries_count_in_stats(self, monkeypatch, capsys):
        lines = iter([
            "p(a).",
            "?- p(X).",
            "?- p(a).",
            ":stats",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "2 queries" in out


class TestReplDurability:
    """The REPL's :save/:open commands and the --data-dir flag."""

    def test_save_then_open_then_data_dir(self, monkeypatch, capsys,
                                          tmp_path):
        store = str(tmp_path / "store")
        lines = iter([
            "t(X, Y) :- e(X, Y).",
            "t(X, Z) :- e(X, Y), t(Y, Z).",
            "+e(a, b).",
            f":save {store}",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        assert "saved" in capsys.readouterr().out

        # :open recovers the store in a fresh REPL; new writes are durable.
        lines = iter([
            f":open {store}",
            "?- t(a, X).",
            "+e(b, c).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "opened" in out
        assert "X = b" in out

        # --data-dir recovers everything, including the post-:open write.
        lines = iter(["?- t(a, X).", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl", "--data-dir", store]) == 0
        out = capsys.readouterr().out
        assert "X = b" in out
        assert "X = c" in out

    def test_save_checkpoints_own_store_under_any_spelling(
        self, monkeypatch, capsys, tmp_path
    ):
        """:save on the session's own data dir is a checkpoint even when
        the path is spelled differently (./store vs store)."""
        store = tmp_path / "store"
        alt = str(store) + "/"        # same directory, different spelling
        lines = iter(["+e(a, b).", f":save {alt}", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl", "--data-dir", str(store)]) == 0
        captured = capsys.readouterr()
        assert "saved" in captured.out
        assert "already holds" not in captured.err

    def test_save_requires_a_directory(self, monkeypatch, capsys):
        lines = iter([":save", ":open", ":quit"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        err = capsys.readouterr().err
        assert "usage: :save DIR" in err
        assert "usage: :open DIR" in err

    def test_save_refusal_is_reported_not_fatal(self, monkeypatch, capsys,
                                                tmp_path):
        store = str(tmp_path / "store")
        lines = iter([
            "p(a).",
            f":save {store}",
            f":save {store}",     # second save: refused, REPL keeps going
            "?- p(a).",
            ":quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        captured = capsys.readouterr()
        assert "already holds durable state" in captured.err
        assert "true" in captured.out
