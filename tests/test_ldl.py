"""Theorem 11/12: LDL grouping ↔ ELPS with stratified negation.

* :func:`grouping_to_elps` — the paper's q/p/¬p maximality construction;
  compared against the engine's native LDL grouping on shared predicates.
* :func:`union_to_grouping` — the Horn+union → LDL direction.
"""

import pytest

from repro.core import (
    GroupingClause,
    Program,
    atom,
    const,
    fact,
    horn,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Evaluator
from repro.engine.setops import with_set_builtins
from repro.transform import grouping_to_elps, union_to_grouping

x, y = var_a("x"), var_a("y")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
a, b, c = const("a"), const("b"), const("c")


def run(program: Program):
    return Evaluator(program, builtins=with_set_builtins()).run()


def bom_program() -> Program:
    return Program.of(
        fact(atom("comp", a, b)),
        fact(atom("comp", a, c)),
        fact(atom("comp", b, c)),
        GroupingClause(
            pred="bom", head_args=(x,), group_pos=1, group_var=y,
            body=(pos(atom("comp", x, y)),),
        ),
    )


class TestGroupingToElps:
    def test_no_grouping_clauses_remain(self):
        translated = grouping_to_elps(bom_program())
        assert not any(
            isinstance(cl, GroupingClause) for cl in translated.clauses
        )

    def test_uses_stratified_negation(self):
        translated = grouping_to_elps(bom_program())
        assert translated.has_negation()
        from repro.engine.stratify import is_stratified

        assert is_stratified(translated)

    def test_agreement_with_native_grouping(self):
        """The translation needs the candidate group sets in the active
        domain; we seed them (every subset of the component universe) and
        then require exact agreement with the engine's native grouping."""
        native = run(bom_program()).relation("bom")

        seeds = []
        elems = [b, c]
        import itertools

        for k in range(len(elems) + 1):
            for combo in itertools.combinations(elems, k):
                seeds.append(fact(atom("cand", setvalue(combo))))
        translated = grouping_to_elps(bom_program()) + Program.of(*seeds)
        got = run(translated).relation("bom")
        assert got == native

    def test_nonempty_guard(self):
        """With nonempty=True (default) no empty groups are derived, which
        matches LDL-engine behaviour; with nonempty=False the ∅ group
        appears for unmatched bindings (the paper's literal construction)."""
        program = Program.of(
            fact(atom("comp", a, b)),
            GroupingClause(
                pred="bom", head_args=(x,), group_pos=1, group_var=y,
                body=(pos(atom("comp", x, y)),),
            ),
        )
        strict = grouping_to_elps(program, nonempty=True)
        m = run(strict)
        assert not any(row[1] == frozenset() for row in m.relation("bom"))

        literal = grouping_to_elps(program, nonempty=False)
        m2 = run(literal)
        # The ∅ group vacuously satisfies (∀x∈∅)B ∧ ¬(bigger set works)…
        # for bindings where no larger witness set exists.
        assert any(row[1] == frozenset() for row in m2.relation("bom")) or (
            m2.relation("bom") >= m.relation("bom")
        )

    def test_maximality(self):
        """The translated B picks the MAXIMAL witness set, not subsets."""
        seeds = [
            fact(atom("cand", setvalue(s)))
            for s in [(), (b,), (c,), (b, c)]
        ]
        translated = grouping_to_elps(bom_program()) + Program.of(*seeds)
        m = run(translated)
        rows = {row for row in m.relation("bom") if row[0] == "a"}
        assert rows == {("a", frozenset({"b", "c"}))}


class TestUnionToGrouping:
    def test_translation_shape(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            horn(atom("u", X, Y, Z), atom("s", X), atom("s", Y),
                 atom("union", X, Y, Z)),
        )
        translated = union_to_grouping(p)
        assert "union" not in translated.predicates()
        assert any(isinstance(cl, GroupingClause) for cl in translated.clauses)

    def test_union_via_grouping_agrees(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            fact(atom("s", setvalue([a, b]))),
            horn(atom("u", X, Y, Z), atom("s", X), atom("s", Y),
                 atom("union", X, Y, Z)),
        )
        m1 = run(p)
        translated = union_to_grouping(p)
        m2 = Evaluator(translated, builtins=with_set_builtins()).run()
        # Grouping produces no empty groups, so ∅ ∪ ∅ = ∅ is out of reach;
        # on non-empty unions the two agree exactly.
        r1 = {t for t in m1.relation("u") if t[2] != frozenset()}
        r2 = {t for t in m2.relation("u") if t[2] != frozenset()}
        assert r1 == r2
        assert (frozenset({"a"}), frozenset({"b"}),
                frozenset({"a", "b"})) in r2


class TestStratifiedCase:
    def test_theorem12_stratified_translation_remains_stratified(self):
        """Theorem 12: the translations map stratified programs to
        stratified programs."""
        p = bom_program().with_clauses([
            horn(atom("big", x), atom("bom", x, X), atom("card", X, const(2))),
        ])
        translated = grouping_to_elps(p)
        from repro.engine.stratify import is_stratified

        assert is_stratified(translated)
