"""Tests for why-provenance (derivation trees)."""

import pytest

from repro import parse_program
from repro.core import EvaluationError, atom, const
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.provenance import DERIVED, GIVEN, GROUPED
from repro.engine.setops import with_set_builtins
from repro.lang import parse_atom


def run(source, db=None):
    program = parse_program(source)
    return Evaluator(
        program, db, builtins=with_set_builtins(),
        options=EvalOptions(track_provenance=True),
    ).run()


class TestBasics:
    def test_disabled_by_default(self):
        from repro.engine import solve

        m = solve(parse_program("p(a)."))
        with pytest.raises(EvaluationError):
            m.explain(parse_atom("p(a)"))

    def test_given_fact(self):
        m = run("p(a).")
        tree = m.explain(parse_atom("p(a)"))
        assert tree.kind == GIVEN
        assert tree.children == []

    def test_missing_atom_rejected(self):
        m = run("p(a).")
        with pytest.raises(EvaluationError):
            m.explain(parse_atom("p(b)"))

    def test_horn_chain(self):
        m = run("""
            e(a, b). e(b, c).
            t(X, Y) :- e(X, Y).
            t(X, Z) :- e(X, Y), t(Y, Z).
        """)
        tree = m.explain(parse_atom("t(a, c)"))
        assert tree.kind == DERIVED
        premises = {str(c.atom) for c in tree.children}
        assert premises == {"e(a, b)", "t(b, c)"}
        # Recursive premise explained in turn.
        (t_bc,) = [c for c in tree.children if str(c.atom) == "t(b, c)"]
        assert {str(c.atom) for c in t_bc.children} == {"e(b, c)"}

    def test_tree_metrics_and_pretty(self):
        m = run("""
            e(a, b). e(b, c).
            t(X, Y) :- e(X, Y).
            t(X, Z) :- e(X, Y), t(Y, Z).
        """)
        tree = m.explain(parse_atom("t(a, c)"))
        assert tree.size() >= 4
        assert tree.depth() >= 3
        text = m.explain_str("t(a, c)")
        assert "t(a, c)" in text and "(given)" in text


class TestQuantifiedRules:
    def test_forall_premises_unfold(self):
        """Lemma 4 in the provenance: one premise per range element.

        The mixed body compiles through a Theorem-6 auxiliary, so the
        quantified premises sit one level below it in the tree."""
        m = run("""
            s({1, 2}). p(1). p(2).
            allp(X) :- s(X), forall A in X (p(A)).
        """)
        tree = m.explain(parse_atom("allp({1, 2})"))
        top = {str(c.atom) for c in tree.children}
        assert "s({1, 2})" in top
        (aux,) = [c for c in tree.children if str(c.atom) != "s({1, 2})"]
        assert {str(c.atom) for c in aux.children} == {"p(1)", "p(2)"}

    def test_vacuous_application_has_no_quantified_premises(self):
        m = run("""
            s({}).
            allp(X) :- s(X), forall A in X (p(A)).
        """)
        tree = m.explain(parse_atom("allp({})"))
        top = {str(c.atom) for c in tree.children}
        assert "s({})" in top
        (aux,) = [c for c in tree.children if str(c.atom) != "s({})"]
        assert aux.children == []  # empty range: zero premises


class TestGroupingProvenance:
    def test_grouped_atom(self):
        m = run("""
            comp(car, wheel). comp(car, engine).
            bom(P, <C>) :- comp(P, C).
        """)
        tree = m.explain(parse_atom("bom(car, {wheel, engine})"))
        assert tree.kind == GROUPED
        premises = {str(c.atom) for c in tree.children}
        assert premises == {"comp(car, wheel)", "comp(car, engine)"}


class TestDatabaseProvenance:
    def test_db_facts_are_given(self):
        db = Database()
        db.add("e", "a", "b")
        program = parse_program("t(X, Y) :- e(X, Y).")
        m = Evaluator(program, db,
                      options=EvalOptions(track_provenance=True)).run()
        tree = m.explain(parse_atom("t(a, b)"))
        (leaf,) = tree.children
        assert leaf.kind == GIVEN
