"""Theorem 5: ``M_P = lfp(T_P) = T_P ↑ ω`` — exact checks over finite
universes, with property-based random programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EvaluationError,
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.semantics import (
    Interpretation,
    TpOperator,
    Universe,
    least_fixpoint,
)

x, y = var_a("x"), var_a("y")
X = var_s("X")
a, b, c = const("a"), const("b"), const("c")


class TestTpOperator:
    def test_facts_always_derived(self):
        p = Program.of(fact(atom("p", a)))
        u = Universe.build([a])
        op = TpOperator(p, u)
        assert atom("p", a) in op.step(Interpretation())

    def test_rule_fires_when_body_holds(self):
        p = Program.of(horn(atom("p", x), atom("q", x)))
        u = Universe.build([a, b])
        op = TpOperator(p, u)
        out = op.step(Interpretation([atom("q", a)]))
        assert atom("p", a) in out
        assert atom("p", b) not in out

    def test_monotone_on_chain(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), atom("q", x)),
        )
        u = Universe.build([a])
        op = TpOperator(p, u)
        m0 = Interpretation()
        m1 = op.step(m0)
        m2 = op.step(m1)
        assert m0 <= m1 or True  # m1 includes facts
        assert set(m1.atoms()) <= set(m2.atoms()) | set(m1.atoms())

    def test_rejects_negation(self):
        p = Program.of(horn(atom("p", a), neg(atom("q", a))))
        u = Universe.build([a])
        with pytest.raises(EvaluationError):
            TpOperator(p, u)

    def test_quantified_rule_via_lemma4(self):
        p = Program.of(
            clause(atom("all_p", X), [(x, X)], [atom("p", x)]),
        )
        u = Universe.build([a, b])
        op = TpOperator(p, u)
        out = op.step(Interpretation([atom("p", a)]))
        assert atom("all_p", setvalue([])) in out       # vacuous
        assert atom("all_p", setvalue([a])) in out
        assert atom("all_p", setvalue([b])) not in out
        assert atom("all_p", setvalue([a, b])) not in out


class TestLeastFixpoint:
    def test_transitive_closure(self):
        p = Program.of(
            fact(atom("e", a, b)),
            fact(atom("e", b, c)),
            horn(atom("t", x, y), atom("e", x, y)),
            horn(atom("t", x, y), atom("e", x, var_a("z")),
                 atom("t", var_a("z"), y)),
        )
        u = Universe.build([a, b, c])
        result = least_fixpoint(p, u)
        m = result.interpretation
        assert m.holds(atom("t", a, c))
        assert not m.holds(atom("t", c, a))

    def test_stages_are_kleene_chain(self):
        p = Program.of(
            fact(atom("e", a, b)),
            fact(atom("e", b, c)),
            horn(atom("t", x, y), atom("e", x, y)),
            horn(atom("t", x, y), atom("t", x, var_a("z")),
                 atom("t", var_a("z"), y)),
        )
        u = Universe.build([a, b, c])
        result = least_fixpoint(p, u, keep_stages=True)
        for lo, hi in zip(result.stages, result.stages[1:]):
            assert set(lo.atoms()) <= set(hi.atoms())

    def test_fixpoint_is_prefixpoint(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), atom("q", x)),
        )
        u = Universe.build([a, b])
        result = least_fixpoint(p, u)
        assert TpOperator(p, u).is_prefixpoint(result.interpretation)

    def test_fixpoint_is_model(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), atom("q", x)),
            clause(atom("r", X), [(x, X)], [atom("p", x)]),
        )
        u = Universe.build([a], max_set_size=1)
        result = least_fixpoint(p, u)
        assert result.interpretation.satisfies_program(p, u)

    def test_quantified_fixpoint_with_empty_sets(self):
        """The vacuous case flows through the fixpoint: r(∅) is derived."""
        p = Program.of(clause(atom("r", X), [(x, X)], [atom("p", x)]))
        u = Universe.build([a], max_set_size=1)
        m = least_fixpoint(p, u).interpretation
        assert m.holds(atom("r", setvalue([])))
        assert not m.holds(atom("r", setvalue([a])))


# ---------------------------------------------------------------------------
# Property-based: random positive programs over a fixed tiny universe.
# ---------------------------------------------------------------------------

CONSTS = [a, b]
UNIVERSE = Universe.build(CONSTS)
VARS = [x, y]

terms_st = st.sampled_from(CONSTS + VARS)
setterm_st = st.sampled_from([X] + list(UNIVERSE.sets))
preds_st = st.sampled_from(["p", "q"])


@st.composite
def random_clause(draw):
    head_pred = draw(preds_st)
    head_args = (draw(terms_st),)
    n_body = draw(st.integers(0, 2))
    body = []
    for _ in range(n_body):
        body.append(pos(atom(draw(preds_st), draw(terms_st))))
    quantify = draw(st.booleans())
    quantifiers = []
    if quantify and body:
        quantifiers = [(x, draw(setterm_st))]
    try:
        return clause(atom(head_pred, *head_args), quantifiers, body)
    except Exception:
        return fact(atom(head_pred, a))


@st.composite
def random_program(draw):
    clauses = draw(st.lists(random_clause(), min_size=1, max_size=4))
    clauses.append(fact(atom("q", a)))
    return Program.of(*clauses)


@settings(max_examples=40, deadline=None)
@given(p=random_program())
def test_tp_monotone(p):
    """T_P is monotone: M1 ⊆ M2 ⇒ T_P(M1) ⊆ T_P(M2)."""
    op = TpOperator(p, UNIVERSE)
    m1 = Interpretation([atom("q", a)])
    m2 = Interpretation([atom("q", a), atom("p", b), atom("q", b)])
    out1, out2 = op.step(m1), op.step(m2)
    assert set(out1.atoms()) <= set(out2.atoms())


@settings(max_examples=40, deadline=None)
@given(p=random_program())
def test_lfp_is_least_prefixpoint(p):
    """lfp(T_P) is a prefixpoint and is contained in every prefixpoint we
    can reach by closing arbitrary supersets."""
    result = least_fixpoint(p, UNIVERSE, max_rounds=60)
    op = TpOperator(p, UNIVERSE)
    lfp = result.interpretation
    assert op.is_prefixpoint(lfp)
    # Close a strict superset seed; the lfp must still be below it.
    seed = lfp | Interpretation([atom("p", b)])
    closed = seed
    for _ in range(40):
        nxt = closed | op.step(closed)
        if len(nxt) == len(closed):
            break
        closed = nxt
    assert set(lfp.atoms()) <= set(closed.atoms())


@settings(max_examples=30, deadline=None)
@given(p=random_program())
def test_theorem5_fixpoint_is_model(p):
    """T_P ↑ ω satisfies P (half of Theorem 5 / Theorem 3(1))."""
    result = least_fixpoint(p, UNIVERSE, max_rounds=60)
    assert result.interpretation.satisfies_program(p, UNIVERSE)
