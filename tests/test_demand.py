"""Tests for the demand (magic-sets-lite) transformation."""

import pytest

from repro import parse_program
from repro.core import ClauseError, Program, atom, const, fact, setvalue
from repro.engine import Database, Evaluator
from repro.engine.setops import with_set_builtins
from repro.transform.demand import add_demand, demanded_sum_program


def run(program, db=None):
    return Evaluator(program, db, builtins=with_set_builtins()).run()


class TestAddDemand:
    def base(self) -> Program:
        return parse_program("""
            sum({}, 0).
            sum(Z, K) :- choose_min(X, Y, Z), sum(Y, M), M + X = K.
            total(K) :- target(Z), sum(Z, K).
        """)

    def test_guard_added_to_defining_clauses(self):
        program, need = add_demand(self.base(), "sum", 0,
                                   seeds=["target"])
        sum_clauses = [c for c in program.lps_clauses()
                       if c.head.pred == "sum"]
        for c in sum_clauses:
            assert any(l.atom.pred == need for l in c.body)

    def test_demand_rules_generated(self):
        program, need = add_demand(self.base(), "sum", 0, seeds=["target"])
        need_rules = [c for c in program.lps_clauses()
                      if c.head.pred == need and not c.is_fact]
        # one from the recursive occurrence, one from total/1's body,
        # one from the seed predicate.
        assert len(need_rules) >= 3

    def test_sum_runs_and_is_correct(self):
        program, _ = add_demand(self.base(), "sum", 0, seeds=["target"])
        db = Database()
        db.add("target", frozenset({3, 5, 9, 11}))
        m = run(program, db)
        assert m.relation("total") == {(28,),}

    def test_matches_handwritten_need(self):
        handwritten = parse_program("""
            need(Z) :- target(Z).
            need(Y) :- need(Z), choose_min(X, Y, Z).
            sum({}, 0).
            sum(Z, K) :- need(Z), choose_min(X, Y, Z), sum(Y, M), M + X = K.
            total(K) :- target(Z), sum(Z, K).
        """)
        generated, _ = add_demand(self.base(), "sum", 0, seeds=["target"])
        db = Database()
        db.add("target", frozenset({1, 2, 4}))
        m1, m2 = run(handwritten, db), run(generated, db)
        assert m1.relation("total") == m2.relation("total") == {(7,)}

    def test_only_demanded_sets_computed(self):
        """The point of the transformation: sum/2 stays linear in |target|,
        not exponential in the powerset."""
        program, _ = add_demand(self.base(), "sum", 0, seeds=["target"])
        db = Database()
        target = frozenset(range(10))
        db.add("target", target)
        m = run(program, db)
        # One sum fact per suffix subset of the canonical decomposition
        # chain: |target| + 1 of them.
        assert len(m.relation("sum")) == len(target) + 1

    def test_ground_seed_terms(self):
        program, need = add_demand(
            self.base(), "sum", 0,
            seeds=[setvalue([const(2), const(4)])],
        )
        m = run(program)
        assert (frozenset({2, 4}), 6) in m.relation("sum")

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ClauseError):
            add_demand(self.base(), "nope", 0)

    def test_bad_position_rejected(self):
        with pytest.raises(ClauseError):
            add_demand(self.base(), "sum", 5)

    def test_non_ground_seed_rejected(self):
        from repro.core import var_s

        with pytest.raises(ClauseError):
            add_demand(self.base(), "sum", 0, seeds=[var_s("X")])

    def test_quantified_position_rejected(self):
        program = parse_program("""
            p({}, 0).
            weird(S) :- q(S), forall A in S (p(S, A)).
        """)
        # Demanding p's FIRST argument is fine (S is free)…
        add_demand(program, "p", 0, seeds=[])
        # …demanding the second (quantified A) is not.
        with pytest.raises(ClauseError):
            add_demand(program, "p", 1, seeds=[])


class TestPackagedSum:
    def test_demanded_sum_program(self):
        program = demanded_sum_program()
        db = Database()
        db.add("target", frozenset({10, 20, 30}))
        m = run(program, db)
        assert m.relation("total") == {(60,)}

    def test_multiple_targets(self):
        program = demanded_sum_program()
        db = Database()
        db.add("target", frozenset({1}))
        db.add("target", frozenset({2, 3}))
        m = run(program, db)
        assert m.relation("total") == {(1,), (5,)}
