"""Fault-injection harness for the replication subsystem.

The contract (DESIGN.md, "Replication & failover"): **acknowledged ⇒
survives failover** — for leader crashes (in-process socket drops, torn
streams, and a real ``kill -9``) at injected points under churn,
promoting the most caught-up follower yields a state that contains every
acknowledged write, is bit-identical to from-scratch evaluation at the
reported version, and never shows any client a version regression.  The
other side of the coin is **fencing**: once a follower has durably seen
epoch *E*, anything from an epoch < *E* lineage — a deposed leader's
stream, or its records spliced into a WAL — is provably rejected.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import parse_program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.replication import (
    FollowerService,
    ReplicaClient,
    ReplicationError,
    ReplicationHub,
    promote_best,
)
from repro.server import (
    E_NOT_YET,
    E_READ_ONLY,
    LineClient,
    QueryService,
    run_in_thread,
)
from repro.storage import DurableModel, RecoveryError, WriteAheadLog
from repro.storage.durable import FencingError
from repro.workloads import failover_plan

TC = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

# Fast-reconnect knobs for every follower in the suite: the fault
# harness tears streams on purpose, so waiting out production backoff
# would dominate the runtime.  ``checkpoint_every=None`` keeps the
# leader's WAL floor at the beginning of time, so a reconnecting
# follower never needs a mid-stream re-seed.
FAST = dict(
    fsync="never", checkpoint_every=None, connect_timeout=2.0,
    read_timeout=0.25, backoff_initial=0.02, backoff_max=0.2,
)


def leader_service(data_dir, source=TC, database=None, **kw):
    kw.setdefault("fsync", "never")
    kw.setdefault("checkpoint_every", None)
    svc = QueryService(source, database=database, data_dir=data_dir, **kw)
    ReplicationHub.attach(svc)
    return svc


def render(model):
    """The comparable identity of a node's state: IDB atoms + EDB facts."""
    snap = model.current
    return (
        tuple(sorted(str(a) for a in snap.interpretation)),
        tuple(sorted(str(a) for a in snap.database.facts())),
    )


def facts_of(model):
    return {str(a) for a in model.current.database.facts()}


def sever(follower):
    """Inject a torn stream: hard-drop the follower's live socket."""
    sock = follower._sock
    if sock is not None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# WAL shipping: replay equivalence, bootstrap, idempotent reconnect
# ---------------------------------------------------------------------------

class TestShipping:
    def test_follower_replays_bit_identical(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            f.start()
            try:
                for u, v in [("a", "b"), ("b", "c"), ("c", "d")]:
                    svc.apply_delta(adds=[("e", u, v)])
                svc.extend_program("p(X) :- t(X, d).")
                assert f.wait_applied(svc.model.version)
                assert render(f.model) == render(svc.model)
                # The replica is a real model, not a fact mirror:
                # from-scratch evaluation of its own EDB agrees.
                fresh = Evaluator(
                    f.model.program, f.model.current.database,
                    builtins=with_set_builtins(), options=EvalOptions(),
                ).run()
                assert f.model.current.interpretation == \
                    fresh.interpretation
            finally:
                f.stop()
        svc.shutdown()

    def test_fresh_follower_bootstraps_from_snapshot(self, tmp_path):
        """A follower that joins late starts from a shipped snapshot (a
        fresh store's initial version lives only in the leader's
        checkpoint, never in its WAL)."""
        db = Database()
        db.add("e", "a", "b")
        svc = leader_service(tmp_path / "leader", database=db)
        with run_in_thread(svc) as h:
            for i in range(4):
                svc.apply_delta(adds=[("e", f"n{i}", f"m{i}")])
            f = FollowerService(h.addr, tmp_path / "late", **FAST)
            f.start()
            try:
                assert f.wait_applied(svc.model.version)
                assert render(f.model) == render(svc.model)
            finally:
                f.stop()
        svc.shutdown()

    def test_torn_stream_reconnect_is_idempotent(self, tmp_path):
        """Severing the stream between every pair of commits loses
        nothing and doubles nothing: redelivered records are skipped by
        version, and the final state matches the leader exactly."""
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            f.start()
            try:
                for i in range(6):
                    sever(f)
                    svc.apply_delta(adds=[("e", f"u{i}", f"v{i}")],
                                    dels=[("e", f"u{i-1}", f"v{i-1}")]
                                    if i else [])
                assert f.wait_applied(svc.model.version, timeout=20)
                assert f.model.version == svc.model.version
                assert render(f.model) == render(svc.model)
            finally:
                f.stop()
        svc.shutdown()

    def test_follower_is_independently_crash_recoverable(self, tmp_path):
        """Kill a follower, restart it over the same data-dir: it
        recovers locally and resumes the stream from its durable applied
        version — not from zero, not from a snapshot."""
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            f.start()
            svc.apply_delta(adds=[("e", "a", "b")])
            assert f.wait_applied(svc.model.version)
            f.stop()                      # follower "crash"
            svc.apply_delta(adds=[("e", "b", "c")])   # progress meanwhile
            f2 = FollowerService(h.addr, tmp_path / "f", **FAST)
            f2.start()
            try:
                assert f2.model.version >= 2   # recovered, not re-seeded
                assert f2.wait_applied(svc.model.version)
                assert render(f2.model) == render(svc.model)
            finally:
                f2.stop()
        svc.shutdown()

    def test_follower_behind_wal_floor_reseeds(self, tmp_path):
        """A follower that falls behind the leader's checkpoint-truncated
        WAL floor cannot replay the gap, so the leader ships a snapshot;
        the follower must discard its stale local state and re-seed from
        it (regression: this used to raise ``ReplicationError`` and wedge
        the follower permanently)."""
        # One record per WAL segment + a single retained checkpoint, so
        # one checkpoint() pushes the replayable floor to the present.
        model = DurableModel(
            parse_program(TC), tmp_path / "leader",
            builtins=with_set_builtins(),
            fsync="never", checkpoint_every=None,
            keep_checkpoints=1, segment_max_bytes=1,
        )
        svc = QueryService(model=model)
        ReplicationHub.attach(svc)
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            f.start()
            svc.apply_delta(adds=[("e", "a", "b")])
            assert f.wait_applied(svc.model.version)
            behind = svc.model.version
            f.stop()                            # follower goes dark
            for i in range(4):                  # leader moves on ...
                svc.apply_delta(adds=[("e", f"u{i}", f"v{i}")])
            model.checkpoint()                  # ... and truncates its WAL
            floor = WriteAheadLog(tmp_path / "leader").first_version()
            assert floor is not None and floor > behind + 1
            f2 = FollowerService(h.addr, tmp_path / "f", **FAST)
            f2.start()
            try:
                assert f2.wait_applied(svc.model.version)
                assert render(f2.model) == render(svc.model)
                # The re-seeded replica keeps streaming deltas after the
                # snapshot — it is a live follower, not a one-shot copy.
                svc.apply_delta(adds=[("e", "z", "w")])
                assert f2.wait_applied(svc.model.version)
                assert render(f2.model) == render(svc.model)
            finally:
                f2.stop()
            # And it stays independently crash-recoverable over the
            # re-seeded store.
            f3 = FollowerService(h.addr, tmp_path / "f", **FAST)
            f3.start()
            try:
                assert f3.wait_applied(svc.model.version)
                assert render(f3.model) == render(svc.model)
            finally:
                f3.stop()
        svc.shutdown()


# ---------------------------------------------------------------------------
# Ack gating and role surfaces
# ---------------------------------------------------------------------------

class TestAckGating:
    def test_ack_replicas_satisfied_by_follower(self, tmp_path):
        svc = leader_service(tmp_path / "leader", ack_replicas=1,
                             ack_timeout=20.0)
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            f.start()
            try:
                snap = svc.apply_delta(adds=[("e", "a", "b")])
                # Returning at all means a follower confirmed durability.
                assert f.model.version >= snap.version
            finally:
                f.stop()
        svc.shutdown()

    def test_replication_lag_is_structured(self, tmp_path):
        """``ack_replicas`` unsatisfiable: the write stays locally
        durable but the session answer is the stable ``replication_lag``
        code, not a hang or a bare exception."""
        svc = leader_service(tmp_path / "leader", ack_replicas=1,
                             ack_timeout=0.2)
        s = svc.open_session()
        r = s.execute("+e(a, b).")
        assert not r.ok and r.code == "replication_lag"
        assert svc.model.version == 2     # locally committed regardless
        svc.shutdown()
        m = DurableModel.recover(
            tmp_path / "leader", builtins=with_set_builtins(),
            fsync="never", checkpoint_every=None,
        )
        try:
            assert "e(a, b)" in facts_of(m)
        finally:
            m.close()


class TestRoles:
    def test_follower_refuses_writes_with_leader_hint(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            fsvc = f.start()
            try:
                s = fsvc.open_session()
                r = s.execute("+e(x, y).")
                assert not r.ok and r.code == E_READ_ONLY
                assert r.data["leader"] == h.addr
                # Batched writes are refused at staging time, clause
                # extensions at dispatch.
                assert s.execute(":begin").ok
                r = s.execute("+e(p, q).")
                assert not r.ok and r.code == E_READ_ONLY
                r = s.execute("p(X) :- e(X, X).")
                assert not r.ok and r.code == E_READ_ONLY
            finally:
                f.stop()
        svc.shutdown()

    def test_role_payloads(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            assert svc.role_info()["role"] == "leader"
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            fsvc = f.start()
            try:
                info = fsvc.open_session().execute(":role").data
                assert info["role"] == "follower"
                assert info["leader"] == h.addr
                hub_info = svc.role_info()["replication"]
                assert hub_info["replicas"] == 1
            finally:
                f.stop()
        svc.shutdown()

    def test_sync_waits_for_replication(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            fsvc = f.start()
            try:
                snap = svc.apply_delta(adds=[("e", "a", "b")])
                s = fsvc.open_session()
                r = s.execute(f":sync {snap.version} 10")
                assert r.ok and r.data["latest"] >= snap.version
                # An unreachable version times out with the retryable code.
                r = s.execute(":sync 999 0.05")
                assert not r.ok and r.code == E_NOT_YET
                assert r.data["retryable"] is True
            finally:
                f.stop()
        svc.shutdown()


# ---------------------------------------------------------------------------
# ReplicaClient routing
# ---------------------------------------------------------------------------

class TestReplicaClient:
    def test_read_your_writes_across_followers(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            fs, handles = [], []
            for i in range(2):
                f = FollowerService(h.addr, tmp_path / f"f{i}", **FAST)
                fs.append(f)
                handles.append(run_in_thread(f.start()))
            try:
                with ReplicaClient(
                    h.addr, [hh.addr for hh in handles]
                ) as client:
                    for i in range(5):
                        r = client.assert_fact(f"e(n{i}, m{i})")
                        assert r.ok
                        # Immediately read back through a follower: the
                        # :sync token forbids observing an older state.
                        got = client.read(f"e(n{i}, X)")
                        assert got.ok and got.data["rows"] == [
                            {"X": f"m{i}"}
                        ]
                    assert client.last_write_version == svc.model.version
            finally:
                for hh in handles:
                    hh.stop()
                for f in fs:
                    f.stop()
        svc.shutdown()

    def test_write_to_follower_redirects_to_leader(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            fh = run_in_thread(f.start())
            try:
                # Aim the client at the follower: the read_only refusal
                # carries the leader's address and the write lands there.
                with ReplicaClient(fh.addr) as client:
                    r = client.assert_fact("e(a, b)")
                    assert r.ok
                    assert client.leader_addr == (h.host, h.port)
                    assert svc.model.version == r.version
            finally:
                fh.stop()
                f.stop()
        svc.shutdown()


# ---------------------------------------------------------------------------
# The headline harness: kill the leader under churn, promote, verify
# ---------------------------------------------------------------------------

class TestFailoverHarness:
    def test_kill_leader_under_churn_promote_and_verify(self, tmp_path):
        """The acceptance property end to end, on a seeded fault plan:
        stream drops at the plan's injection points, leader death at its
        kill point, promotion of the most caught-up follower, survivor
        retargeting — every acknowledged write survives, the promoted
        state is bit-identical to the acknowledged reference at its
        version, and a polling reader never observes a regression."""
        plan = failover_plan(
            n_nodes=10, n_edges=18, n_batches=12, batch_size=2,
            n_drops=2, n_sets=3, seed=2,
        )
        db = Database()
        for spec in plan.initial_facts:
            db.add(*spec)
        svc = leader_service(
            tmp_path / "leader", source=plan.program, database=db,
            ack_replicas=1, ack_timeout=30.0,
        )
        h_leader = run_in_thread(svc)
        followers, handles = {}, {}
        for name in ("f0", "f1"):
            f = FollowerService(h_leader.addr, tmp_path / name, **FAST)
            followers[name] = f
            handles[name] = run_in_thread(f.start())
        observer = LineClient(handles["f0"].host, handles["f0"].port,
                              timeout=10.0)
        try:
            reference = {svc.model.version: render(svc.model)}
            acked = [svc.model.version]
            observed = []
            for i, batch in enumerate(
                plan.batches[:plan.kill_leader_after]
            ):
                if i in plan.drop_stream_after:
                    sever(followers["f0"])
                snap = svc.apply_delta(adds=batch.adds, dels=batch.dels)
                acked.append(snap.version)
                reference[snap.version] = render(svc.model)
                observed.append(observer.send(":version").data["latest"])

            # Leader dies at the kill point.  (The real SIGKILL variant
            # lives in TestSubprocessKill; here the servers share one
            # process, so the crash is a hard server stop.)
            h_leader.stop()
            svc.shutdown()

            addr_of = {
                (handles[n].host, handles[n].port): n for n in followers
            }
            best, role = promote_best(
                [handles[n].addr for n in followers]
            )
            promoted = followers[addr_of[best]]
            survivor = followers[
                next(n for n in followers if addr_of[best] != n)
            ]
            assert role["role"] == "leader"
            assert promoted.model.epoch >= 1

            # acknowledged ⇒ survived, bit-identical at the promoted
            # node's reported version.
            pv = promoted.model.version
            assert pv >= max(acked)
            assert render(promoted.model) == reference[pv]

            # The survivor re-subscribes to the new leader and the rest
            # of the plan's churn lands on the new lineage.
            survivor.retarget(best)
            new_leader = promoted.service
            for batch in plan.batches[plan.kill_leader_after:]:
                snap = new_leader.apply_delta(
                    adds=batch.adds, dels=batch.dels
                )
                acked.append(snap.version)
                reference[snap.version] = render(new_leader.model)
                observed.append(
                    observer.send(":version").data["latest"]
                )

            final = acked[-1]
            assert acked == sorted(acked)      # versions never regress
            assert survivor.wait_applied(final, timeout=30)
            assert render(survivor.model) == reference[final]
            assert render(promoted.model) == reference[final]
            # No reader observed a version regression across the kill.
            assert all(a <= b for a, b in zip(observed, observed[1:]))
            # Bit-identical to from-scratch evaluation of the survivors'
            # facts — the replicated lineage is a real model.
            fresh = Evaluator(
                promoted.model.program,
                promoted.model.current.database,
                builtins=with_set_builtins(), options=EvalOptions(),
            ).run()
            assert promoted.model.current.interpretation == \
                fresh.interpretation
        finally:
            observer.close()
            for n in followers:
                handles[n].stop()
                followers[n].stop()

    def test_fenced_old_leader_is_rejected_end_to_end(self, tmp_path):
        """Split brain, resolved by epochs: after a partition and a
        promotion, the deposed leader keeps accepting writes on the old
        lineage — and any follower of the new lineage that hears from it
        fences the stream instead of applying them."""
        svc = leader_service(tmp_path / "leader")
        h_leader = run_in_thread(svc)
        f1 = FollowerService(h_leader.addr, tmp_path / "f1", **FAST)
        h1 = run_in_thread(f1.start())
        f2 = FollowerService(h_leader.addr, tmp_path / "f2", **FAST)
        f2.start()
        try:
            svc.apply_delta(adds=[("e", "a", "b")])           # v2, epoch 0
            assert f1.wait_applied(2) and f2.wait_applied(2)

            # Partition: the followers fail over; the old leader is
            # still alive and takes one more (doomed) write.
            f1.promote()                                      # epoch 1
            f2.retarget(h1.addr)
            svc.apply_delta(adds=[("w", "stale", "x")])       # old lineage
            f1.service.apply_delta(adds=[("e", "b", "c")])    # new lineage
            assert f2.wait_applied(3, timeout=20)
            assert f2.model.epoch == 1       # epoch adopted durably
            assert "e(b, c)" in facts_of(f2.model)
            assert "w(stale, x)" not in facts_of(f2.model)

            # Splice the fenced lineage back in: point the survivor at
            # the deposed leader.  Its hello announces epoch 0 — the
            # stream is fenced terminally, nothing is applied.
            before = render(f2.model)
            f2.retarget(h_leader.addr)
            assert wait_until(lambda: f2.role_info()["fenced"], timeout=10)
            assert render(f2.model) == before
            assert "w(stale, x)" not in facts_of(f2.model)
        finally:
            h1.stop()
            f1.stop()
            f2.stop()
            h_leader.stop()
            svc.shutdown()

    def test_promote_is_idempotent_and_leader_refuses(self, tmp_path):
        svc = leader_service(tmp_path / "leader")
        with run_in_thread(svc) as h:
            # A plain leader has nothing to promote.
            s = svc.open_session()
            r = s.execute(":promote")
            assert not r.ok and r.code == "not_a_follower"
            f = FollowerService(h.addr, tmp_path / "f", **FAST)
            fsvc = f.start()
            try:
                first = f.promote()
                second = f.promote()
                assert first["role"] == second["role"] == "leader"
                assert fsvc.model.epoch == 1   # bumped exactly once
            finally:
                f.stop()
        svc.shutdown()


class TestSubprocessKill:
    def test_kill9_leader_then_promote(self, tmp_path):
        """The real thing: a leader process dies by SIGKILL; a follower
        that confirmed the writes is promoted and carries on."""
        prog = tmp_path / "prog.lps"
        prog.write_text(TC)
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.repl.cli", "serve",
             str(prog), "--host", "127.0.0.1", "--port", "0",
             "--data-dir", str(tmp_path / "leader"), "--fsync", "never"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd="/root/repo", env=env,
        )
        follower = None
        fh = None
        try:
            addr = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                if "listening on" in line:
                    addr = line.rsplit(" ", 1)[-1].strip()
                    break
            assert addr, "leader subprocess never reported its address"

            follower = FollowerService(addr, tmp_path / "f", **FAST)
            fh = run_in_thread(follower.start())
            host, port = addr.rsplit(":", 1)
            with LineClient(host, int(port), timeout=10.0) as c:
                for i in range(3):
                    assert c.send(f"+e(k{i}, k{i+1}).").ok
                latest = c.send(":version").data["latest"]
            assert follower.wait_applied(latest, timeout=20)

            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

            best, role = promote_best([fh.addr])
            assert role["role"] == "leader" and best == (fh.host, fh.port)
            with LineClient(fh.host, fh.port, timeout=10.0) as c:
                # Every write the dead leader acknowledged survives …
                assert c.query("t(k0, k3)").data["truth"]
                # … and the promoted node accepts new writes.
                r = c.send("+e(k3, k4).")
                assert r.ok and r.version > latest
                assert c.query("t(k0, k4)").data["truth"]
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()
            if fh is not None:
                fh.stop()
            if follower is not None:
                follower.stop()


# ---------------------------------------------------------------------------
# Fencing at the storage layer: stale-epoch appends rejected on replay
# ---------------------------------------------------------------------------

class TestFencingOnReplay:
    def _store(self, tmp_path):
        m = DurableModel(
            parse_program(TC), tmp_path, Database(),
            builtins=with_set_builtins(), fsync="never",
            checkpoint_every=None,
        )
        m.apply_delta(adds=[("e", "a", "b")])     # v2, epoch 0
        m.bump_epoch(1)
        m.close()
        return m

    def _recover(self, tmp_path):
        return DurableModel.recover(
            tmp_path, builtins=with_set_builtins(), fsync="never",
            checkpoint_every=None,
        )

    def test_stale_epoch_append_rejected(self, tmp_path):
        """A deposed leader's record (epoch 0 after the store durably
        saw epoch 1) spliced into the WAL refuses to replay."""
        self._store(tmp_path)
        from repro.core import atom, const

        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append_delta(3, [atom("w", const("stale"))], [], epoch=0)
        wal.close()
        with pytest.raises(FencingError, match="stale-epoch"):
            self._recover(tmp_path)

    def test_unannounced_epoch_rejected(self, tmp_path):
        self._store(tmp_path)
        from repro.core import atom, const

        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append_delta(3, [atom("w", const("x"))], [], epoch=5)
        wal.close()
        with pytest.raises(RecoveryError, match="no epoch record"):
            self._recover(tmp_path)

    def test_epoch_survives_recovery(self, tmp_path):
        self._store(tmp_path)
        m = self._recover(tmp_path)
        try:
            assert m.epoch == 1 and m.version == 2
        finally:
            m.close()


# ---------------------------------------------------------------------------
# Backpressure: a stalled subscriber is cut off, not buffered without bound
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_stalled_subscriber_is_cut_off_not_buffered(self, tmp_path):
        """A follower that subscribes and never reads must be dropped
        once its bounded record queue overflows — leader memory stays
        O(max_queue) and writers never block on the dead stream.  (The
        follower would then reconnect through the ordinary
        snapshot/history handoff; reconnect idempotence is covered
        above.)"""
        svc = QueryService(
            TC, data_dir=tmp_path / "leader", fsync="never",
            checkpoint_every=None,
        )
        hub = ReplicationHub.attach(svc, max_queue=4)
        with run_in_thread(svc) as h:
            sock = socket.create_connection((h.host, h.port), timeout=5)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
                sock.sendall(b":repl from 0\n")
                assert wait_until(
                    lambda: hub.replica_info()["replicas"] == 1
                )
                # Big records fill the transport buffer fast, parking the
                # serve loop in drain(); the queue then overflows.
                blob = "x" * 262144
                for i in range(120):
                    svc.apply_delta(adds=[("e", f"{blob}{i}", f"v{i}")])
                    if hub.replica_info()["replicas"] == 0:
                        break
                assert wait_until(
                    lambda: hub.replica_info()["replicas"] == 0
                ), "stalled subscriber was never dropped"
                # The leader is unaffected: writes still commit.
                before = svc.model.version
                snap = svc.apply_delta(adds=[("e", "a", "b")])
                assert snap.version == before + 1
            finally:
                sock.close()
        svc.shutdown()
