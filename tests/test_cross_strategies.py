"""Three-way agreement on random programs: naive bottom-up, semi-naive
bottom-up, and the top-down prover must answer ground queries identically
whenever the prover's search terminates (its loop check makes it sound and
complete on these function-free programs)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Evaluator, TopDownProver
from repro.engine.evaluation import EvalOptions

x, y, z = var_a("x"), var_a("y"), var_a("z")
X = var_s("X")
a, b, c = const("a"), const("b"), const("c")
CONSTS = [a, b, c]
SETS = [setvalue([]), setvalue([a]), setvalue([a, b]), setvalue([b, c])]

pred1 = st.sampled_from(["p", "q", "r"])
terms = st.sampled_from(CONSTS + [x, y])


@st.composite
def horn_clause(draw):
    head = atom(draw(pred1), draw(st.sampled_from(CONSTS + [x])))
    n = draw(st.integers(0, 2))
    body = [pos(atom(draw(pred1), draw(terms))) for _ in range(n)]
    if head.free_vars() and not body:
        body = [pos(atom("p", next(iter(head.free_vars()))))]
    return horn(head, *body)


@st.composite
def horn_programs(draw):
    clauses = [fact(atom("p", a)), fact(atom("q", b))]
    clauses += draw(st.lists(horn_clause(), min_size=1, max_size=5))
    return Program.of(*clauses)


def ground_queries(program):
    """Ground goals over the program's own constants.

    The prover answers w.r.t. the full Herbrand universe while the engine
    is active-domain-relativised, so queries about constants foreign to
    the program (where an unrestricted head variable makes the prover say
    yes) are out of scope by design — see the engine's module docstring.
    """
    consts = sorted(program.constants(), key=str)
    for p in ("p", "q", "r"):
        for t in consts:
            yield atom(p, t)


@settings(max_examples=40, deadline=None)
@given(program=horn_programs())
def test_three_way_agreement(program):
    m_naive = Evaluator(program, options=EvalOptions(semi_naive=False)).run()
    m_semi = Evaluator(program, options=EvalOptions(semi_naive=True)).run()
    assert m_naive.interpretation == m_semi.interpretation
    prover = TopDownProver(program, max_depth=200)
    for goal in ground_queries(program):
        assert prover.holds(goal) == m_naive.holds(goal), (
            f"{goal} on\n{program.pretty()}"
        )


@st.composite
def set_programs(draw):
    """Programs mixing set facts, membership and one quantified rule."""
    clauses = [fact(atom("s", draw(st.sampled_from(SETS))))
               for _ in range(draw(st.integers(1, 3)))]
    clauses.append(fact(atom("p", a)))
    clauses.append(
        clause(atom("allp", X), [(x, X)], [atom("s", X), atom("p", x)])
    )
    if draw(st.booleans()):
        clauses.append(horn(atom("elem", y), atom("s", X), member(y, X)))
    return Program.of(*clauses)


@settings(max_examples=40, deadline=None)
@given(program=set_programs())
def test_set_program_agreement(program):
    m_naive = Evaluator(program, options=EvalOptions(semi_naive=False)).run()
    m_semi = Evaluator(program, options=EvalOptions(semi_naive=True)).run()
    assert m_naive.interpretation == m_semi.interpretation
    prover = TopDownProver(program, max_depth=200)
    for s in SETS:
        goal = atom("allp", s)
        # The top-down prover proves the quantified goal for ground sets;
        # but the bottom-up rule also requires s(X), which the prover
        # checks identically.
        assert prover.holds(goal) == m_naive.holds(goal), (
            f"{goal} on\n{program.pretty()}"
        )


@settings(max_examples=25, deadline=None)
@given(program=horn_programs())
def test_provenance_covers_whole_model(program):
    """With tracking on, every model atom has a derivation record and its
    tree's leaves are given facts or structural truths."""
    m = Evaluator(
        program, options=EvalOptions(track_provenance=True)
    ).run()
    for ground in m.interpretation:
        tree = m.explain(ground)
        stack = [tree]
        while stack:
            node = stack.pop()
            if not node.children:
                assert node.kind in ("given", "structural", "derived",
                                     "grouped")
            stack.extend(node.children)
