"""End-to-end reproduction of the paper's Examples 1–6 (and Example 9),
written in the concrete syntax and run on the engine.

Experiment index: E1 (Examples 1–3), E2 (Example 4), E3 (Example 5),
E4 (Example 6) in DESIGN.md / EXPERIMENTS.md.
"""

import pytest

from repro import parse_program, solve
from repro.engine import Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import parts_database, parts_world


def run(source, **opts):
    program = parse_program(source)
    options = EvalOptions(**opts) if opts else EvalOptions()
    return Evaluator(program, builtins=with_set_builtins(),
                     options=options).run()


class TestExample1Disj:
    """disj(X, Y) :- (∀x∈X)(∀y∈Y)(x ≠ y)."""

    SOURCE = """
        s({1, 2}). s({2, 3}). s({4, 5}). s({}).
        disj(X, Y) :- forall A in X (forall B in Y (A != B)).
    """

    def test_disjointness(self):
        m = run(self.SOURCE)
        assert m.holds_str("disj({1, 2}, {4, 5})")
        assert not m.holds_str("disj({1, 2}, {2, 3})")
        assert not m.holds_str("disj({1, 2}, {1, 2})")

    def test_empty_set_disjoint_from_everything(self):
        m = run(self.SOURCE)
        assert m.holds_str("disj({}, {})")
        assert m.holds_str("disj({}, {1, 2})")
        assert m.holds_str("disj({1, 2}, {})")


class TestExample2Subset:
    """subset(X, Y) :- (∀x∈X)(x ∈ Y) — membership is primitive."""

    SOURCE = """
        s({1}). s({1, 2}). s({1, 2, 3}). s({4}).
        subset(X, Y) :- forall A in X (A in Y).
    """

    def test_subset(self):
        m = run(self.SOURCE)
        assert m.holds_str("subset({1}, {1, 2})")
        assert m.holds_str("subset({1, 2}, {1, 2, 3})")
        assert not m.holds_str("subset({1, 2}, {1})")
        assert not m.holds_str("subset({4}, {1, 2, 3})")

    def test_reflexive_and_empty(self):
        m = run(self.SOURCE)
        assert m.holds_str("subset({1}, {1})")
        assert m.holds_str("subset({}, {4})")


class TestExample3Union:
    """union(X,Y,Z) via subset + the disjunctive covering condition;
    the disjunction is compiled away (Theorem 6) by the parser."""

    SOURCE = """
        s({1}). s({2}). s({1, 2}). s({}).
        subset(X, Y) :- forall A in X (A in Y).
        un(X, Y, Z) :- subset(X, Z), subset(Y, Z),
                       forall C in Z (C in X or C in Y).
    """

    def test_union(self):
        m = run(self.SOURCE)
        assert m.holds_str("un({1}, {2}, {1, 2})")
        assert m.holds_str("un({1}, {}, {1})")
        assert m.holds_str("un({}, {}, {})")
        assert not m.holds_str("un({1}, {2}, {1})")
        assert not m.holds_str("un({1}, {2}, {2})")
        assert not m.holds_str("un({1}, {1}, {1, 2})")

    def test_union_is_functional_on_domain(self):
        m = run(self.SOURCE)
        rows = m.relation("un")
        by_inputs = {}
        for xx, yy, zz in rows:
            by_inputs.setdefault((xx, yy), set()).add(zz)
        for (xx, yy), zs in by_inputs.items():
            assert zs == {xx | yy}


class TestExample4Unnest:
    """S(x, y) :- R(x, Y) ∧ y ∈ Y — the unnest of [JS82]."""

    SOURCE = """
        r(k1, {a, b}). r(k2, {c}). r(k3, {}).
        s(X, E) :- r(X, Y), E in Y.
    """

    def test_unnest(self):
        m = run(self.SOURCE)
        assert m.relation("s") == {("k1", "a"), ("k1", "b"), ("k2", "c")}

    def test_empty_sets_drop_out(self):
        m = run(self.SOURCE)
        assert not any(row[0] == "k3" for row in m.relation("s"))


class TestExample5Sum:
    """sum(Z, k) by recursive disjoint decomposition.

    The paper's recursion admits any disjoint-union split; bottom-up we use
    the deterministic ``choose_min`` decomposition plus a demand predicate
    (see DESIGN.md) — same recursion, one canonical derivation per set.
    """

    SOURCE = """
        target({3, 5, 9}).
        need(Z) :- target(Z).
        need(Y) :- need(Z), choose_min(X, Y, Z).
        sum({}, 0).
        sum(Z, K) :- need(Z), choose_min(X, Y, Z), sum(Y, M), M + X = K.
        total(K) :- target(Z), sum(Z, K).
    """

    def test_sum(self):
        m = run(self.SOURCE)
        assert m.relation("total") == {(17,)}

    def test_paper_formulation_on_small_set(self):
        """The paper's exact disjoint-union recursion, evaluated with the
        union builtin over materialised subsets (exponential — tiny set)."""
        source = """
            target({3, 5}).
            cand(S) :- target(Z), subset_enum(S, Z).
            disjoint(X, Y) :- cand(X), cand(Y),
                              forall A in X (forall B in Y (A != B)).
            dunion(X, Y, Z) :- cand(X), cand(Y), cand(Z),
                               union(X, Y, Z), disjoint(X, Y).
            sum({}, 0).
            sum(S, 0) :- cand(S), S = {}.
            sum(S, N) :- cand(S), S = {N}.
            sum(Z, K) :- dunion(X, Y, Z), X != Z, Y != Z,
                         sum(X, M), sum(Y, N), M + N = K.
            total(K) :- target(Z), sum(Z, K).
        """
        m = run(source)
        assert m.relation("total") == {(8,)}


class TestExample6PartsExplosion:
    """obj-cost via parts/cost — the cost roll-up of Example 6."""

    SOURCE = """
        parts(bike, {frame, wheelset}).
        parts(wheelset, {front_wheel, rear_wheel}).
        cost(frame, 100).
        cost(front_wheel, 40).
        cost(rear_wheel, 45).

        item_cost(P, C) :- cost(P, C).
        item_cost(P, C) :- obj_cost(P, C).

        need(S) :- parts(P, S).
        need(Y) :- need(Z), choose_min(X, Y, Z).

        sum_costs({}, 0).
        sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                           item_cost(P, C), sum_costs(Y, M), M + C = K.
        obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
    """

    def test_cost_rollup(self):
        m = run(self.SOURCE)
        costs = dict(m.relation("obj_cost"))
        assert costs["wheelset"] == 85
        assert costs["bike"] == 185

    def test_generated_hierarchy(self):
        """Same program over a generated parts world; checked against the
        analytically computed roll-up."""
        world = parts_world(depth=3, fanout=2, seed=1)
        db = parts_database(world)
        rules = parse_program("""
            item_cost(P, C) :- cost(P, C).
            item_cost(P, C) :- obj_cost(P, C).
            need(S) :- parts(P, S).
            need(Y) :- need(Z), choose_min(X, Y, Z).
            sum_costs({}, 0).
            sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                               item_cost(P, C), sum_costs(Y, M), M + C = K.
            obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
        """)
        m = Evaluator(rules, db, builtins=with_set_builtins()).run()
        derived = dict(m.relation("obj_cost"))
        for assembly in world.parts:
            assert derived[assembly] == world.expected[assembly]


class TestExample9UnionViaTheorem6:
    """The general construction's output defines union (11 clauses in the
    paper's faithful rendering); checked semantically in
    test_positive_transform.py — here we check the parsed sugar agrees."""

    def test_or_sugar_matches_aux_free_program(self):
        source_sugar = """
            s({1}). s({2}). s({1, 2}). s({}).
            un(X, Y, Z) :- forall A in X (A in Z), forall B in Y (B in Z),
                           forall C in Z (C in X or C in Y).
        """
        m = run(source_sugar)
        assert m.holds_str("un({1}, {2}, {1, 2})")
        assert not m.holds_str("un({1}, {2}, {2})")
