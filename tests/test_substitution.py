"""Unit tests for substitutions, including sort checks and canonicalization."""

import pytest

from repro.core import (
    EMPTY_SUBST,
    SetExpr,
    SortError,
    Subst,
    app,
    const,
    mkset,
    setvalue,
    var_a,
    var_s,
    var_u,
)

x, y = var_a("x"), var_a("y")
X, Y = var_s("X"), var_s("Y")
a, b = const("a"), const("b")


class TestConstruction:
    def test_sort_check_a_to_set_rejected(self):
        with pytest.raises(SortError):
            Subst({x: setvalue([a])})

    def test_sort_check_s_to_atom_rejected(self):
        with pytest.raises(SortError):
            Subst({X: a})

    def test_untyped_var_binds_anything(self):
        Subst({var_u("u"): a})
        Subst({var_u("u"): setvalue([a])})

    def test_non_var_key_rejected(self):
        with pytest.raises(SortError):
            Subst({a: b})  # type: ignore[dict-item]


class TestApply:
    def test_basic(self):
        theta = Subst({x: a})
        assert theta.apply(x) == a
        assert theta.apply(y) == y

    def test_apply_canonicalizes_sets(self):
        theta = Subst({x: a, y: b})
        result = theta.apply(SetExpr((x, y, x)))
        assert result == setvalue([a, b])

    def test_apply_inside_app(self):
        theta = Subst({x: a})
        assert theta.apply(app("f", x)) == app("f", a)

    def test_partial_set_instantiation(self):
        theta = Subst({x: a})
        result = theta.apply(SetExpr((x, y)))
        assert isinstance(result, SetExpr)

    def test_binding_value_canonicalized_at_construction(self):
        theta = Subst({X: SetExpr((a, b, a))})
        assert theta[X] == setvalue([a, b])


class TestAlgebra:
    def test_compose_order(self):
        theta = Subst({x: y})
        sigma = Subst({y: a})
        composed = theta.compose(sigma)
        assert composed.apply(x) == a

    def test_compose_matches_sequential_application(self):
        theta = Subst({x: y})
        sigma = Subst({y: a, x: b})
        composed = theta.compose(sigma)
        t = mkset(a)  # ground: unaffected
        assert composed.apply(t) == sigma.apply(theta.apply(t))
        assert composed.apply(x) == sigma.apply(theta.apply(x))

    def test_bind_returns_new(self):
        theta = EMPTY_SUBST.bind(x, a)
        assert x not in EMPTY_SUBST
        assert theta[x] == a

    def test_restrict(self):
        theta = Subst({x: a, y: b})
        r = theta.restrict([x])
        assert x in r and y not in r

    def test_equality_and_hash(self):
        assert Subst({x: a}) == Subst({x: a})
        assert hash(Subst({x: a})) == hash(Subst({x: a}))
        assert Subst({x: a}) != Subst({x: b})

    def test_is_ground_for(self):
        theta = Subst({x: a})
        assert theta.is_ground_for([x])
        assert not theta.is_ground_for([x, y])
