"""Tests for LPS clauses, Lemma 4 grounding, rules and grouping clauses."""

import pytest

from repro.core import (
    Atom,
    ClauseError,
    GroupingClause,
    LPSClause,
    Rule,
    Subst,
    atom,
    clause,
    const,
    equals,
    fact,
    horn,
    member,
    mkset,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.core.formulas import AndF, ForallIn, evaluate

x, y = var_a("x"), var_a("y")
X, Y = var_s("X"), var_s("Y")
a, b, c = const("a"), const("b"), const("c")


class TestClauseValidation:
    def test_special_head_rejected(self):
        """Definition 5: the head must be non-special."""
        with pytest.raises(ClauseError):
            horn(equals(x, x))
        with pytest.raises(ClauseError):
            horn(member(x, X))

    def test_quantifier_binds_sort_a(self):
        with pytest.raises(ClauseError):
            clause(atom("p", X), [(Y, X)], [])

    def test_quantifier_range_must_be_set(self):
        from repro.core import SortError

        with pytest.raises(SortError):
            clause(atom("p", X), [(x, y)], [])

    def test_fact_must_be_ground(self):
        with pytest.raises(ClauseError):
            fact(atom("p", x))

    def test_core_check_rejects_negation(self):
        c = horn(atom("p", a), neg(atom("q", a)))
        with pytest.raises(ClauseError):
            c.check_core()

    def test_horn_is_special_case(self):
        """Definition 5: n = 0 gives an ordinary Horn clause."""
        c = horn(atom("p", x), atom("q", x))
        assert c.is_horn and not c.is_fact


class TestFreeVars:
    def test_quantified_vars_not_free(self):
        c = clause(atom("disj", X, Y), [(x, X), (y, Y)], [atom("p", x, y)])
        assert c.free_vars() == {X, Y}
        assert c.quantified_vars() == {x, y}

    def test_body_only_vars_are_free(self):
        c = horn(atom("p", x), atom("q", x, y))
        assert c.free_vars() == {x, y}


class TestLemma4:
    """Every ground instance of an LPS clause is a ground Horn clause."""

    def test_expansion_over_product(self):
        cl = clause(
            atom("disj", X, Y), [(x, X), (y, Y)], [atom("neq", x, y)]
        )
        g = cl.ground_instances(
            Subst({X: setvalue([a, b]), Y: setvalue([c])})
        )
        assert g.head == atom("disj", setvalue([a, b]), setvalue([c]))
        bodies = {str(l.atom) for l in g.body}
        assert bodies == {"neq(a, c)", "neq(b, c)"}

    def test_empty_set_gives_empty_body(self):
        """(∀x ∈ ∅)B unfolds to the empty (true) conjunction."""
        c = clause(atom("p", X), [(x, X)], [atom("q", x)])
        g = c.ground_instances(Subst({X: setvalue([])}))
        assert g.body == ()

    def test_multiplicity(self):
        c = clause(
            atom("p", X, Y), [(x, X), (y, Y)], [atom("r", x, y)]
        )
        g = c.ground_instances(
            Subst({X: setvalue([a, b]), Y: setvalue([a, b])})
        )
        assert len(g.body) == 4

    def test_grounding_requires_full_substitution(self):
        c = clause(atom("p", X), [(x, X)], [atom("q", x, y)])
        with pytest.raises(ClauseError):
            c.ground_instances(Subst({X: setvalue([a])}))

    def test_equivalence_with_formula_semantics(self):
        """The Horn expansion and the quantified formula agree on truth."""
        c = clause(atom("p", X), [(x, X)], [atom("q", x)])
        theta = Subst({X: setvalue([a, b])})
        g = c.ground_instances(theta)
        for truth in [set(), {atom("q", a)}, {atom("q", a), atom("q", b)}]:
            oracle = lambda at: at in truth
            horn_truth = all(
                evaluate(AndF((y,)), oracle) if False else (l.atom in truth)
                for l in g.body
            )
            formula_truth = evaluate(
                c.body_formula().substitute(theta), oracle
            )
            assert horn_truth == formula_truth


class TestSubstitution:
    def test_capture_avoidance(self):
        c = clause(atom("p", X), [(x, X)], [atom("q", x)])
        c2 = c.substitute(Subst({x: a}))
        # The quantified x must not be touched.
        assert c2 == c

    def test_substitute_free(self):
        c = clause(atom("p", X), [(x, X)], [atom("q", x)])
        c2 = c.substitute(Subst({X: setvalue([a])}))
        assert c2.head == atom("p", setvalue([a]))
        assert c2.quantifiers[0][1] == setvalue([a])


class TestRule:
    def test_rule_special_head_rejected(self):
        with pytest.raises(ClauseError):
            Rule(head=equals(a, a))

    def test_rule_positive_detection(self):
        from repro.core.formulas import NotF, atomf

        assert Rule(atom("p", a), atomf(atom("q", a))).is_positive()
        assert not Rule(atom("p", a), NotF(atomf(atom("q", a)))).is_positive()


class TestGroupingClause:
    def test_basic_construction(self):
        g = GroupingClause(
            pred="bom",
            head_args=(x,),
            group_pos=1,
            group_var=y,
            body=(pos(atom("component", x, y)),),
        )
        assert "bom(x, <y>)" in str(g)

    def test_group_var_not_set_sorted(self):
        with pytest.raises(ClauseError):
            GroupingClause(
                pred="g", head_args=(), group_pos=0, group_var=X, body=()
            )

    def test_group_var_not_in_plain_args(self):
        with pytest.raises(ClauseError):
            GroupingClause(
                pred="g",
                head_args=(y,),
                group_pos=0,
                group_var=y,
                body=(pos(atom("p", y)),),
            )

    def test_free_vars(self):
        g = GroupingClause(
            pred="g",
            head_args=(x,),
            group_pos=1,
            group_var=y,
            body=(pos(atom("p", x, y)),),
        )
        assert g.free_vars() == {x, y}
