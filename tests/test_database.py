"""Tests for the Database and Python-value conversion layer."""

import pytest

from repro.core import App, Const, EvaluationError, SetValue, setvalue, var_a
from repro.engine import Database, from_term, to_term


class TestConversion:
    def test_scalars(self):
        assert to_term("a") == Const("a")
        assert to_term(7) == Const(7)
        assert from_term(Const("a")) == "a"
        assert from_term(Const(7)) == 7

    def test_bool(self):
        assert to_term(True) == Const("true")

    def test_sets(self):
        t = to_term({1, 2})
        assert isinstance(t, SetValue)
        assert from_term(t) == frozenset({1, 2})

    def test_nested_sets(self):
        t = to_term(frozenset({frozenset({1})}))
        assert from_term(t) == frozenset({frozenset({1})})

    def test_lists_become_sets(self):
        assert from_term(to_term([1, 1, 2])) == frozenset({1, 2})

    def test_terms_pass_through(self):
        c = Const("x")
        assert to_term(c) is c

    def test_non_ground_term_rejected(self):
        with pytest.raises(EvaluationError):
            to_term(var_a("x"))

    def test_unconvertible(self):
        with pytest.raises(EvaluationError):
            to_term(object())

    def test_app_to_python(self):
        from repro.core import app

        assert from_term(app("f", Const("a"))) == ("f", "a")


class TestDatabase:
    def test_add_and_relation(self):
        db = Database()
        db.add("e", "a", "b")
        db.add("e", "a", "c")
        assert db.relation("e") == {("a", "b"), ("a", "c")}
        assert len(db) == 2

    def test_extend(self):
        db = Database()
        db.extend("s", [({"x", "y"},), ({"z"},)])
        assert len(db.relation("s")) == 2

    def test_from_mapping(self):
        db = Database.from_mapping({"e": [("a", "b")], "n": [("a",)]})
        assert db.predicates() == {"e", "n"}

    def test_as_program(self):
        db = Database()
        db.add("p", "a")
        program = db.as_program()
        assert len(program.clauses) == 1
        assert program.clauses[0].is_fact

    def test_non_ground_atom_rejected(self):
        from repro.core import atom

        db = Database()
        with pytest.raises(EvaluationError):
            db.add_atom(atom("p", var_a("x")))

    def test_dedup(self):
        db = Database()
        db.add("p", "a")
        db.add("p", "a")
        assert len(db) == 1
