"""Tests for the lexer, parser and sort inference."""

import pytest

from repro.core import (
    EMPTY_SET,
    App,
    Const,
    GroupingClause,
    LPSClause,
    ParseError,
    SetValue,
    SortError,
    Var,
)
from repro.core.sorts import SORT_A, SORT_S
from repro.lang import parse_atom, parse_program, parse_term, tokenize


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize("p(X, a, 42) :- q. % comment\n")
        kinds = [t.kind for t in toks]
        assert kinds == ["IDENT", "PUNCT", "VARIABLE", "PUNCT", "IDENT",
                         "PUNCT", "INT", "PUNCT", "PUNCT", "IDENT",
                         "PUNCT", "EOF"]

    def test_keywords(self):
        toks = tokenize("forall exists in not or and true")
        assert all(t.kind == "KEYWORD" for t in toks[:-1])

    def test_directive(self):
        toks = tokenize("#elps")
        assert toks[0].kind == "DIRECTIVE" and toks[0].text == "elps"

    def test_quoted_constant(self):
        toks = tokenize("'Hello World'")
        assert toks[0].kind == "STRING"

    def test_unterminated_quote(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_positions(self):
        toks = tokenize("p.\nq.")
        assert toks[2].line == 2

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("p :- q @ r.")


class TestTerms:
    def test_constants(self):
        assert parse_term("a") == Const("a")
        assert parse_term("42") == Const(42)
        assert parse_term("'weird name'") == Const("weird name")

    def test_variable_untyped(self):
        t = parse_term("Xs")
        assert isinstance(t, Var) and t.sort == "u"

    def test_function_term(self):
        t = parse_term("f(a, g(b))")
        assert t == App("f", (Const("a"), App("g", (Const("b"),))))

    def test_set_term_canonical(self):
        t = parse_term("{a, b, a}")
        assert isinstance(t, SetValue) and len(t) == 2

    def test_empty_set(self):
        assert parse_term("{}") == EMPTY_SET

    def test_function_of_set_rejected(self):
        with pytest.raises(ParseError):
            parse_term("f({a})")


class TestAtoms:
    def test_atom_with_set(self):
        a = parse_atom("disj({1, 2}, {3})")
        assert a.pred == "disj"
        assert isinstance(a.args[0], SetValue)

    def test_propositional_atom(self):
        assert parse_atom("go").pred == "go"

    def test_operators(self):
        assert parse_atom("X = Y").pred == "="
        assert parse_atom("X != Y").pred == "neq"
        assert parse_atom("X in Y").pred == "in"
        assert parse_atom("X < Y").pred == "lt"


class TestPrograms:
    def test_facts_and_rules(self):
        p = parse_program("e(a, b). t(X, Y) :- e(X, Y).")
        assert len(p.clauses) == 2
        assert all(isinstance(c, LPSClause) for c in p.clauses)

    def test_prefix_quantifiers_stay_native(self):
        p = parse_program(
            "disj(X, Y) :- forall A in X (forall B in Y (A != B))."
        )
        (c,) = p.clauses
        assert isinstance(c, LPSClause)
        assert len(c.quantifiers) == 2

    def test_non_prefix_body_compiles_via_theorem6(self):
        p = parse_program(
            "p(X) :- q(X) or r(X)."
        )
        assert len(p.clauses) >= 3  # two aux clauses + the head clause
        assert all(isinstance(c, LPSClause) for c in p.clauses)

    def test_grouping_clause(self):
        p = parse_program("bom(P, <C>) :- component(P, C).")
        (g,) = p.clauses
        assert isinstance(g, GroupingClause)
        assert g.group_pos == 1

    def test_grouping_requires_body(self):
        with pytest.raises(ParseError):
            parse_program("bom(P, <C>).")

    def test_two_grouped_args_rejected(self):
        with pytest.raises(ParseError):
            parse_program("g(<A>, <B>) :- p(A, B).")

    def test_arithmetic_sugar(self):
        p = parse_program("s(K) :- n(M), n(N), M + N = K.")
        (c,) = [c for c in p.clauses if c.head.pred == "s"]
        body_preds = [l.atom.pred for l in c.body]
        assert "plus" in body_preds

    def test_nested_arithmetic_flattens(self):
        p = parse_program("s(K) :- n(M), M + 2 * M = K.")
        (c,) = [c for c in p.clauses if c.head.pred == "s"]
        body_preds = [l.atom.pred for l in c.body]
        assert "times" in body_preds and "plus" in body_preds

    def test_negation(self):
        p = parse_program("p(X) :- q(X), not r(X).")
        (c,) = p.clauses
        assert any(not l.positive for l in c.body)

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(a)")

    def test_elps_directive(self):
        p = parse_program("#elps\np({{a}}).")
        assert p.mode == "elps"

    def test_nested_set_rejected_in_lps(self):
        with pytest.raises(SortError):
            parse_program("p({{a}}).")

    def test_semicolon_disjunction(self):
        p = parse_program("p(X) :- q(X); r(X).")
        heads = [c.head.pred for c in p.clauses]
        assert heads.count("p") >= 1


class TestSortInference:
    def sorts_of(self, source, pred):
        p = parse_program(source)
        for c in p.lps_clauses():
            if c.head.pred == pred:
                return tuple(a.sort for a in c.head.args)
        raise AssertionError(f"no clause for {pred}")

    def test_membership_constrains(self):
        assert self.sorts_of("p(X, Y) :- X in Y.", "p") == (SORT_A, SORT_S)

    def test_quantifier_constrains(self):
        src = "p(X) :- forall A in X (q(A))."
        assert self.sorts_of(src, "p") == (SORT_S,)

    def test_propagation_through_predicates(self):
        src = """
            base(S) :- E in S.
            derived(T) :- base(T).
        """
        assert self.sorts_of(src, "derived") == (SORT_S,)

    def test_equality_links_sides(self):
        src = "p(X, Y) :- X = Y, E in X."
        assert self.sorts_of(src, "p") == (SORT_S, SORT_S)

    def test_builtin_signatures(self):
        src = "p(X, N) :- card(X, N)."
        assert self.sorts_of(src, "p") == (SORT_S, SORT_A)

    def test_default_sort_is_a(self):
        assert self.sorts_of("p(X) :- q(X).", "p") == (SORT_A,)

    def test_conflict_detected(self):
        with pytest.raises(SortError):
            parse_program("p(X) :- X in X.")

    def test_set_literal_constrains(self):
        src = "p(X) :- X = {a}."
        assert self.sorts_of(src, "p") == (SORT_S,)

    def test_grouped_position_is_set_downstream(self):
        src = """
            bom(P, <C>) :- component(P, C).
            big(P) :- bom(P, S), card(S, N), N > 2.
        """
        p = parse_program(src)
        (big,) = [c for c in p.lps_clauses() if c.head.pred == "big"]
        (bom_lit,) = [l for l in big.body if l.atom.pred == "bom"]
        assert bom_lit.atom.args[1].sort == SORT_S
