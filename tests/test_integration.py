"""End-to-end integration scenarios combining parser, transforms, engine,
prover, grouping and nested relations — the workloads the paper's
introduction motivates (nested-relation querying with recursion).
"""

import pytest

from repro import parse_program
from repro.core import atom, const
from repro.engine import Database, Evaluator, TopDownProver
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.lang import parse_atom


def run(source, db=None, **opts):
    program = parse_program(source)
    options = EvalOptions(**opts) if opts else EvalOptions()
    return Evaluator(program, db, builtins=with_set_builtins(),
                     options=options).run()


class TestCourseCatalogue:
    """A nested course catalogue: prerequisites are SETS of courses."""

    SOURCE = """
        % prereq(Course, SetOfPrerequisites)
        prereq(intro, {}).
        prereq(logic, {intro}).
        prereq(db, {intro}).
        prereq(advanced_db, {db, logic}).
        prereq(research, {advanced_db}).

        % a student's completed courses
        done(ann, {intro, logic, db}).
        done(bob, {intro}).

        % eligibility: all prerequisites completed
        eligible(S, C) :- done(S, D), prereq(C, P),
                          forall Q in P (Q in D).

        % transitive requirement closure, per course
        requires(C, Q) :- prereq(C, P), Q in P.
        requires(C, Q) :- requires(C, M), requires(M, Q).

        % the full requirement set, via grouping
        closure(C, <Q>) :- requires(C, Q).
    """

    def test_eligibility(self):
        m = run(self.SOURCE)
        assert m.holds_str("eligible(ann, advanced_db)")
        assert not m.holds_str("eligible(bob, advanced_db)")
        # vacuous prerequisites: everyone is eligible for intro
        assert m.holds_str("eligible(ann, intro)")
        assert m.holds_str("eligible(bob, intro)")

    def test_requirement_closure(self):
        m = run(self.SOURCE)
        rows = dict(m.relation("closure"))
        assert rows["research"] == frozenset(
            {"advanced_db", "db", "logic", "intro"}
        )
        assert rows["logic"] == frozenset({"intro"})

    def test_topdown_agrees_on_ground_goals(self):
        program = parse_program(self.SOURCE)
        # The grouping clause is not supported top-down; strip it.
        from repro.core import GroupingClause, Program

        lps_only = Program(
            tuple(c for c in program.clauses
                  if not isinstance(c, GroupingClause)),
            mode=program.mode,
        )
        m = Evaluator(program, builtins=with_set_builtins()).run()
        td = TopDownProver(lps_only, builtins=with_set_builtins())
        for text in [
            "eligible(ann, advanced_db)",
            "eligible(bob, db)",
            "requires(research, intro)",
        ]:
            goal = parse_atom(text)
            assert td.holds(goal) == m.holds(goal), text


class TestSocialGroups:
    """Set-valued analytics: cliques-as-sets with stratified negation."""

    SOURCE = """
        member_of(g1, {ann, bob, eve}).
        member_of(g2, {bob, eve}).
        member_of(g3, {dan}).

        % groups that share nobody
        independent(G, H) :- member_of(G, X), member_of(H, Y),
                             forall A in X (forall B in Y (A != B)).

        % subgroup relation between groups
        subgroup(G, H) :- member_of(G, X), member_of(H, Y),
                          forall A in X (A in Y).

        % proper subgroup needs negation
        proper_subgroup(G, H) :- subgroup(G, H), not subgroup(H, G).
    """

    def test_independence(self):
        m = run(self.SOURCE)
        assert m.holds_str("independent(g3, g1)")
        assert not m.holds_str("independent(g1, g2)")

    def test_proper_subgroup(self):
        m = run(self.SOURCE)
        assert m.holds_str("proper_subgroup(g2, g1)")
        assert not m.holds_str("proper_subgroup(g1, g2)")
        assert not m.holds_str("proper_subgroup(g1, g1)")

    def test_naive_and_seminaive_agree(self):
        m1 = run(self.SOURCE, semi_naive=True)
        m2 = run(self.SOURCE, semi_naive=False)
        assert m1.interpretation == m2.interpretation


class TestInventoryRollup:
    """Example 6 at integration level: parts + prices from a Database, the
    demand transformation applied mechanically, provenance on top."""

    RULES = """
        item_cost(P, C) :- cost(P, C).
        item_cost(P, C) :- obj_cost(P, C).
        sum_costs({}, 0).
        sum_costs(Z, K) :- choose_min(P, Y, Z),
                           item_cost(P, C), sum_costs(Y, M), M + C = K.
        obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
        part_sets(S) :- parts(P, S).
    """

    def database(self):
        db = Database()
        db.add("parts", "bike", frozenset({"frame", "wheelset"}))
        db.add("parts", "wheelset", frozenset({"front", "rear"}))
        db.add("cost", "frame", 100)
        db.add("cost", "front", 40)
        db.add("cost", "rear", 45)
        return db

    def test_with_mechanical_demand(self):
        from repro.transform import add_demand

        base = parse_program(self.RULES)
        program, _need = add_demand(base, "sum_costs", 0,
                                    seeds=["part_sets"])
        m = Evaluator(program, self.database(),
                      builtins=with_set_builtins()).run()
        costs = dict(m.relation("obj_cost"))
        assert costs == {"wheelset": 85, "bike": 185}

    def test_provenance_of_rollup(self):
        from repro.transform import add_demand

        base = parse_program(self.RULES)
        program, _ = add_demand(base, "sum_costs", 0, seeds=["part_sets"])
        m = Evaluator(
            program, self.database(), builtins=with_set_builtins(),
            options=EvalOptions(track_provenance=True),
        ).run()
        tree = m.explain(parse_atom("obj_cost(bike, 185)"))
        rendered = tree.pretty()
        assert "parts(bike," in rendered
        assert "sum_costs(" in rendered
        assert tree.depth() >= 3
