"""Tests for bounded Herbrand universes/bases (Definitions 7, 8, 13)."""

import pytest

from repro.core import EvaluationError, app, atom, const, setvalue, var_a
from repro.semantics import (
    Universe,
    atom_terms,
    herbrand_base,
    nested_set_values,
    set_values,
)

a, b, c = const("a"), const("b"), const("c")


class TestAtomTerms:
    def test_constants_only(self):
        assert atom_terms([a, b]) == [a, b]

    def test_dedup(self):
        assert atom_terms([a, a, b]) == [a, b]

    def test_function_closure_depth1(self):
        terms = atom_terms([a], {"f": 1}, depth=1)
        assert app("f", a) in terms
        assert app("f", app("f", a)) not in terms

    def test_function_closure_depth2(self):
        terms = atom_terms([a], {"f": 1}, depth=2)
        assert app("f", app("f", a)) in terms

    def test_binary_function(self):
        terms = atom_terms([a, b], {"g": 2}, depth=1)
        assert app("g", a, b) in terms
        assert app("g", b, a) in terms


class TestSetValues:
    def test_full_powerset(self):
        sets = set_values([a, b])
        assert len(sets) == 4  # {}, {a}, {b}, {a,b}

    def test_size_cap(self):
        sets = set_values([a, b, c], max_size=1)
        assert len(sets) == 4  # {} + three singletons

    def test_exclude_empty(self):
        sets = set_values([a], include_empty=False)
        assert setvalue([]) not in sets

    def test_powerset_guard(self):
        many = [const(i) for i in range(20)]
        with pytest.raises(EvaluationError):
            set_values(many)

    def test_definition7_u_s_is_powerset(self):
        """U_s = P^fin(U_a): over a finite carrier, exactly the powerset."""
        sets = set_values([a, b, c])
        assert len(sets) == 8


class TestNestedSetValues:
    def test_depth1_is_flat(self):
        sets = nested_set_values([a], depth=1, max_size=1)
        assert setvalue([]) in sets and setvalue([a]) in sets
        assert all(
            not any(isinstance(e, type(setvalue([]))) for e in s)
            for s in sets
        )

    def test_depth2_contains_nested(self):
        sets = nested_set_values([a], depth=2, max_size=1)
        assert setvalue([setvalue([a])]) in sets

    def test_monotone_in_depth(self):
        s1 = set(nested_set_values([a], depth=1, max_size=1))
        s2 = set(nested_set_values([a], depth=2, max_size=1))
        assert s1 <= s2


class TestUniverse:
    def test_build(self):
        u = Universe.build([a, b])
        assert u.size == (2, 4)

    def test_carriers(self):
        u = Universe.build([a])
        assert list(u.carrier("a")) == [a]
        assert len(u.carrier("s")) == 2
        assert len(u.carrier("u")) == 3

    def test_contains(self):
        u = Universe.build([a])
        assert a in u
        assert setvalue([a]) in u
        assert b not in u

    def test_rejects_set_in_atom_carrier(self):
        with pytest.raises(EvaluationError):
            Universe((setvalue([a]),), ())

    def test_rejects_non_ground(self):
        with pytest.raises(EvaluationError):
            Universe((var_a("x"),), ())


class TestHerbrandBase:
    def test_enumeration(self):
        u = Universe.build([a, b], max_set_size=1)
        base = list(herbrand_base({"p": ("a",)}, u))
        assert base == [atom("p", a), atom("p", b)]

    def test_mixed_signature(self):
        u = Universe.build([a], max_set_size=1)
        base = list(herbrand_base({"r": ("a", "s")}, u))
        # 1 atom × 2 sets
        assert len(base) == 2

    def test_multiple_predicates_sorted(self):
        u = Universe.build([a])
        base = list(herbrand_base({"q": ("a",), "p": ("a",)}, u))
        assert base[0].pred == "p"
