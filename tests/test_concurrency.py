"""Concurrency harness: snapshot consistency under real threads.

The service-layer contract, stated as a testable property: **every answer
a concurrent reader receives is bit-identical to a from-scratch
evaluation of the database at the version the answer reports**, where
versions are published in writer order — i.e. each read observes *some*
prefix of the applied delta sequence, consistent with publication order,
and a session's observed versions never go backwards.  That is snapshot
consistency / linearizability of versions, and it must hold across every
engine option combination (``use_indexes × plan_joins × compile_plans``)
and for 1–8 reader threads.

The stress test replays the PR-2 maintenance traps (DRed recursion,
counting with alternative derivations, stratified negation, grouping-like
set construction) while readers hammer the model mid-sweep: a reader that
ever saw a half-applied DRed overdeletion or a torn counting batch would
disagree with the from-scratch oracle at its version.

The stats test pins the satellite fix: counters are collected per session
and merged on read, so ``:stats`` totals are exact — not approximately
right — under a parallel thread pool.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.lang import parse_atom
from repro.server import QueryService
from repro.workloads import edge_churn, mixed_traffic, query_stream

#: All engine option combinations the acceptance criteria name.
ALL_MODES = [
    {"use_indexes": ui, "plan_joins": pj, "compile_plans": cp}
    for ui in (True, False)
    for pj in (True, False)
    for cp in (True, False)
]

TC_SOURCE = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

#: Recursion (DRed), a nonrecursive join stratum (counting), and
#: stratified negation over the recursion (per-stratum recompute) — the
#: three maintenance plans, all live at once.
TRAP_SOURCE = TC_SOURCE + """
n(v0). n(v1). n(v2). n(v3).
pair(X, Y) :- e(X, Y), n(X), n(Y).
iso(X) :- n(X), not t(X, X).
"""

_CONSTS = ["a", "b", "c", "d"]
FACT_SPACE = [("e", u, v) for u in _CONSTS for v in _CONSTS]


def _oracle(program, facts):
    """From-scratch evaluation of the program over the given fact set."""
    db = Database()
    for spec in sorted(facts):
        db.add(*spec)
    return Evaluator(
        program, db, builtins=with_set_builtins()
    ).run()


def _expected_rows(model, query_text):
    """Oracle answers for a pattern query, in the session's row format
    (full bindings sorted by variable name, deduplicated, sorted)."""
    pattern = parse_atom(query_text)
    names = sorted(v.name for v in pattern.free_vars())
    rows = set()
    for theta in model.query(pattern):
        by_name = {v.name: t for v, t in theta.items()}
        rows.add(tuple(by_name[n] for n in names))
    from repro.core.terms import order_key

    return sorted(rows, key=lambda r: tuple(order_key(t) for t in r))


def _run_readers(svc, streams, observations, errors):
    """Spawn one reader thread per stream; collect (version, query, rows)."""
    def reader(stream, out):
        session = svc.open_session()
        try:
            last_version = 0
            for q in stream:
                result = session.query(q)
                # Sessions follow the head: versions never go backwards.
                assert result.version >= last_version
                last_version = result.version
                out.append((result.version, q, result.rows))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            session.close()

    threads = []
    for stream in streams:
        out = []
        observations.append(out)
        threads.append(threading.Thread(target=reader, args=(stream, out)))
    for t in threads:
        t.start()
    return threads


def _check_observations(program, states, observations):
    """Every recorded answer equals the oracle at its reported version."""
    oracles = {}
    for out in observations:
        for version, query_text, rows in out:
            assert version in states, (
                f"answer reported unknown version {version}"
            )
            model = oracles.get(version)
            if model is None:
                model = oracles[version] = _oracle(
                    program, states[version]
                )
            assert rows == _expected_rows(model, query_text), (
                f"answer for {query_text!r} at version {version} "
                "diverged from from-scratch evaluation"
            )


@settings(max_examples=6, deadline=None)
@given(
    initial=st.sets(st.sampled_from(FACT_SPACE), max_size=6),
    batches=st.lists(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(FACT_SPACE)),
            min_size=1, max_size=3,
        ),
        min_size=1, max_size=3,
    ),
    n_readers=st.integers(1, 8),
    mode_seed=st.integers(0, 10**6),
)
def test_snapshot_consistency_property(
    initial, batches, n_readers, mode_seed
):
    """Concurrent answers ≡ from-scratch evaluation of some applied-delta
    prefix, across all engine option combinations and 1–8 threads."""
    program = parse_program(TC_SOURCE)
    # Constants here are a..d, not v0..vN: rewrite the stream's nodes.
    queries = tuple(
        q.replace("v0", "a").replace("v1", "b")
         .replace("v2", "c").replace("v3", "d")
        for q in query_stream(6, n_nodes=4, pred="t", seed=mode_seed)
    )
    for mode in ALL_MODES:
        svc = QueryService(
            TC_SOURCE, options=EvalOptions(**mode), max_workers=n_readers
        )
        for spec in sorted(initial):
            svc.apply_delta(adds=[spec])
        base_version = svc.model.version
        facts = set(initial)
        states = {base_version: frozenset(facts)}

        observations, errors = [], []
        threads = _run_readers(
            svc, [queries] * n_readers, observations, errors
        )
        # The single writer publishes the batches while readers run.
        for batch in batches:
            adds = [spec for is_add, spec in batch if is_add]
            dels = [spec for is_add, spec in batch if not is_add]
            facts = (facts - set(dels)) | set(adds)
            snap = svc.apply_delta(adds=adds, dels=dels)
            states[snap.version] = frozenset(facts)
        for t in threads:
            t.join(timeout=60)
        svc.shutdown()
        assert not errors, errors
        # Readers started after the initial facts were applied, so the
        # only observable versions are base_version and the batch ones.
        _check_observations(program, states, observations)


@pytest.mark.parametrize("n_readers", [2, 8])
def test_dred_counting_stress_under_threads(n_readers):
    """Readers during DRed/counting/negation maintenance never observe
    over-deleted (or under-derived) facts — the PR-2 traps, under threads."""
    program = parse_program(TRAP_SOURCE)
    edges = [(f"v{i}", f"v{i+1}") for i in range(6)] + [("v6", "v0")]
    svc = QueryService(TRAP_SOURCE, max_workers=n_readers)
    for u, v in edges:
        svc.apply_delta(adds=[("e", u, v)])
    base_version = svc.model.version

    streams = [
        tuple(
            q for pair in zip(
                query_stream(12, 7, pred="t", seed=100 + i),
                ("iso(X)", "pair(v0, X)") * 6,
            ) for q in pair
        )
        for i in range(n_readers)
    ]
    observations, errors = [], []
    stop = threading.Event()

    def reader(stream, out):
        """Cycle the stream until the writer is done: reads are then
        guaranteed to overlap live maintenance sweeps, not just follow
        them."""
        session = svc.open_session()
        try:
            i, last_version = 0, 0
            while not stop.is_set() or i < len(stream):
                q = stream[i % len(stream)]
                result = session.query(q)
                assert result.version >= last_version
                last_version = result.version
                out.append((result.version, q, result.rows))
                i += 1
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)
        finally:
            session.close()

    threads = []
    for stream in streams:
        out = []
        observations.append(out)
        threads.append(threading.Thread(target=reader, args=(stream, out)))
    for t in threads:
        t.start()

    facts = {("e", u, v) for u, v in edges}
    states = {base_version: frozenset(facts)}
    for batch in edge_churn(edges, n_batches=12, batch_size=2,
                            n_nodes=7, seed=5):
        facts = (facts - set(batch.dels)) | set(batch.adds)
        snap = svc.apply_delta(adds=batch.adds, dels=batch.dels)
        states[snap.version] = frozenset(facts)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    svc.shutdown()
    assert not errors, errors
    _check_observations(program, states, observations)
    # The harness must actually have exercised concurrency: every reader
    # recorded answers, and at least one answer landed on a mid-stream
    # version (published while readers were running).
    assert all(obs for obs in observations)
    mid_versions = {v for out in observations for v, _, _ in out}
    assert len(mid_versions) > 1, (
        "no reader ever observed an intermediate version; the stress "
        "did not overlap the writer"
    )


def test_stats_totals_exact_under_parallel_queries():
    """``:stats`` totals are exact under the thread pool: per-session
    collection + merge-on-read, no shared mutable counter on reads."""
    n_threads, per_thread = 6, 25
    svc = QueryService(TC_SOURCE, max_workers=n_threads)
    for i in range(10):
        svc.apply_delta(adds=[("e", f"v{i}", f"v{i+1}")])

    queries = query_stream(per_thread, 11, pred="t", seed=9)
    # Serial ground truth for the static phase.
    probe = svc.open_session()
    expected_answers = sum(len(probe.query(q).rows) for q in queries)
    probe.close()
    before = svc.stats_data()

    results, errors = [], []

    def worker():
        session = svc.open_session()
        try:
            for q in queries:
                results.append(len(session.query(q).rows))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            session.close()

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors

    after = svc.stats_data()
    assert after["queries"] - before["queries"] == n_threads * per_thread
    assert (after["answers"] - before["answers"]
            == n_threads * expected_answers == sum(results))
    assert after["errors"] == before["errors"] == 0
    svc.shutdown()


def test_stats_totals_match_observed_under_churn():
    """With a writer racing the readers, totals still equal exactly what
    the readers observed (no lost or double-counted increments)."""
    n_threads, per_thread = 4, 20
    svc = QueryService(TC_SOURCE, max_workers=n_threads)
    plan = mixed_traffic(
        [(f"v{i}", f"v{i+1}") for i in range(8)],
        n_readers=n_threads, queries_per_reader=per_thread,
        n_batches=10, batch_size=2, n_nodes=9, seed=3,
    )
    for u, v in [(f"v{i}", f"v{i+1}") for i in range(8)]:
        svc.apply_delta(adds=[("e", u, v)])
    before = svc.stats_data()

    observed = []
    errors = []

    def reader(stream):
        session = svc.open_session()
        try:
            observed.append(sum(
                len(session.query(q).rows) for q in stream
            ))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            session.close()

    threads = [
        threading.Thread(target=reader, args=(stream,))
        for stream in plan.reader_streams
    ]
    for t in threads:
        t.start()
    for batch in plan.writer_batches:
        svc.apply_delta(adds=batch.adds, dels=batch.dels)
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors

    after = svc.stats_data()
    assert after["queries"] - before["queries"] == plan.n_queries
    assert after["answers"] - before["answers"] == sum(observed)
    svc.shutdown()
