"""Index, planner and plan-IR correctness: the optimised paths change nothing.

The engine's argument indexes (`Interpretation.candidates`), the
selectivity-driven join planner (`Solver._priority`) and the compiled
set-at-a-time plan pipeline (`EvalOptions.compile_plans`, see DESIGN.md
"Plan IR and executor") are pure optimisations: for every program and
database they must yield exactly the same model as a forced unindexed
scan with the left-to-right-ish bound-count heuristic on the
tuple-at-a-time solver.  This file checks that across the workload
generators in ``repro.workloads.generators`` and across random set
programs, over the full on/off grid of
``columnar`` × ``compile_plans`` × ``use_indexes`` × ``plan_joins``
(the columnar executor rides on compiled plans, so half the grid
exercises its numpy kernels and per-node row fallbacks bit-for-bit
against the others).
"""

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.core import atom, const, setvalue, fact, Program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import (
    chain_graph,
    cycle_graph,
    grid_graph,
    parts_database,
    parts_world,
    random_graph,
    random_sets,
    set_database,
)

MODES = [
    {"columnar": co, "compile_plans": cp, "use_indexes": ui, "plan_joins": pj}
    for co, cp, ui, pj in product((True, False), repeat=4)
]


def models_for(program, db=None, **extra):
    """The model's sorted atoms under every index/planner combination."""
    out = []
    for mode in MODES:
        options = EvalOptions(**mode, **extra)
        model = Evaluator(program, db, builtins=with_set_builtins(),
                          options=options).run()
        out.append(model.interpretation.sorted_atoms())
    return out


def assert_all_agree(program, db=None, **extra):
    indexed, *others = models_for(program, db, **extra)
    for other in others:
        assert other == indexed


TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


def graph_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


@pytest.mark.parametrize("edges", [
    chain_graph(24),
    cycle_graph(12),
    grid_graph(4, 4),
    random_graph(16, 40, seed=3),
    random_graph(10, 25, seed=7),
])
def test_transitive_closure_workloads(edges):
    db = graph_db(edges)
    for semi_naive in (True, False):
        assert_all_agree(TC, db, semi_naive=semi_naive)


SETPREDS = parse_program("""
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).
subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).
over(X, Y) :- s(X), s(Y), A in X, A in Y.
""")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_set_predicate_workloads(seed):
    db = set_database("s", 10, universe=12, max_size=4, seed=seed)
    assert_all_agree(SETPREDS, db)


PARTS = parse_program("""
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
""")


@pytest.mark.parametrize("depth,fanout", [(2, 2), (3, 2)])
def test_parts_workload(depth, fanout):
    world = parts_world(depth=depth, fanout=fanout, seed=5)
    db = parts_database(world)
    assert_all_agree(PARTS, db)
    # And the model is actually right, not just self-consistent.
    model = Evaluator(PARTS, db, builtins=with_set_builtins()).run()
    derived = dict(model.relation("obj_cost"))
    for obj, expected in world.expected.items():
        if obj in world.parts:
            assert derived[obj] == expected


@settings(max_examples=25)
@given(
    n_sets=st.integers(2, 8),
    universe=st.integers(3, 10),
    seed=st.integers(0, 1000),
)
def test_random_set_databases(n_sets, universe, seed):
    sets = random_sets(n_sets, universe, max_size=4, seed=seed)
    clauses = [fact(atom("s", setvalue([const(e) for e in s]))) for s in sets]
    program = Program.of(*clauses, *SETPREDS.clauses)
    assert_all_agree(program)


# ---------------------------------------------------------------------------
# Index consistency under interleaved add/remove (incremental maintenance
# relies on `Interpretation.remove` keeping every built index exact).
# ---------------------------------------------------------------------------

from itertools import combinations

from repro.semantics.interpretation import Interpretation

_CS = [const(c) for c in ("a", "b", "c")]
ATOM_SPACE = (
    [atom("p", u, v) for u in _CS for v in _CS]
    + [atom("q", u) for u in _CS]
    + [atom("p3", u, v, w) for u in _CS for v in _CS for w in _CS][:10]
)


def _position_signatures(arity):
    positions = range(arity)
    return [
        tuple(c) for r in range(1, arity + 1)
        for c in combinations(positions, r)
    ]


def _assert_indexes_match_scan(interp):
    """Every (pred, positions, key) bucket equals a fresh linear scan."""
    for pred in {"p", "q", "p3"}:
        facts = list(interp.facts_of(pred))
        arities = {f.arity for f in facts} or {1}
        for arity in arities:
            for positions in _position_signatures(arity):
                keys = {tuple(f.args[i] for i in positions)
                        for f in facts if f.arity == arity}
                keys.add(tuple(_CS[0] for _ in positions))  # absent key
                for key in keys:
                    scan = [
                        f for f in facts
                        if f.arity == arity
                        and tuple(f.args[i] for i in positions) == key
                    ]
                    got = list(interp.candidates(pred, positions, key))
                    assert sorted(map(str, got)) == sorted(map(str, scan))
                    assert (interp.candidate_count(pred, positions, key)
                            == len(scan))


# ---------------------------------------------------------------------------
# Most-selective-position candidate choice (the skewed-relation regression:
# the solver must not commit to a fixed bound position when another bound
# position's index bucket is far smaller).
# ---------------------------------------------------------------------------

from repro.engine.evaluation import ActiveDomain, Solver
from repro.semantics.interpretation import Interpretation as _Interp


def _skewed_interpretation(n=200):
    """``r(hub, i)`` for many i (position 0 is useless) plus a handful of
    ``r(x_j, probe)`` rows (position 1 is highly selective)."""
    interp = _Interp()
    for i in range(n):
        interp.add(atom("r", const("hub"), const(f"v{i}")))
    for j in range(3):
        interp.add(atom("r", const(f"x{j}"), const("probe")))
    interp.add(atom("r", const("hub"), const("probe")))
    return interp


def test_candidates_choose_most_selective_bound_position():
    interp = _skewed_interpretation()
    solver = Solver(interp, ActiveDomain())
    pattern = atom("r", const("hub"), const("probe"))
    candidates = list(solver._candidates(pattern))
    # Position 0 ("hub") matches 201 facts; position 1 ("probe") matches 4.
    # A first-bound-position choice would scan the 201-row bucket.
    assert len(candidates) <= 4
    assert atom("r", const("hub"), const("probe")) in candidates
    # The estimate the join planner sees agrees with the chosen bucket.
    assert solver._estimate("r", pattern.args, (0, 1)) <= 4


def test_skewed_pattern_models_agree():
    db = Database()
    for i in range(40):
        db.add("r", "hub", f"v{i}")
    for j in range(3):
        db.add("r", f"x{j}", "probe")
    program = parse_program("""
    hit(X) :- r(hub, Y), r(X, probe), r(X, Y).
    """)
    assert_all_agree(program, db)


@settings(max_examples=30)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(ATOM_SPACE) - 1)),
        min_size=1, max_size=50,
    ),
    probe_at=st.integers(0, 10),
)
def test_remove_keeps_indexes_consistent(ops, probe_at):
    """candidates()/candidate_count() == linear scan after add/remove churn.

    The ``probe_at`` query forces index construction mid-sequence, so later
    adds *and removes* exercise the incremental index-maintenance paths,
    not the lazy rebuild."""
    interp = Interpretation()
    live: set = set()
    for step, (is_add, idx) in enumerate(ops):
        a = ATOM_SPACE[idx]
        if is_add:
            assert interp.add(a) == (a not in live)
            live.add(a)
        else:
            assert interp.remove(a) == (a in live)
            live.discard(a)
        if step == probe_at:
            # Build several indexes now; they must stay exact afterwards.
            interp.candidates("p", (0,), (_CS[0],))
            interp.candidates("p", (0, 1), (_CS[0], _CS[1]))
            interp.candidates("q", (0,), (_CS[2],))
            interp.candidates("p3", (1,), (_CS[1],))
    assert set(interp.atoms()) == live
    assert len(interp) == len(live)
    _assert_indexes_match_scan(interp)
