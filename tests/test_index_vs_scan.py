"""Index and planner correctness: the optimised paths change nothing.

The engine's argument indexes (`Interpretation.candidates`) and the
selectivity-driven join planner (`Solver._priority`) are pure optimisations:
for every program and database they must yield exactly the same model as a
forced unindexed scan with the left-to-right-ish bound-count heuristic.
This file checks that across the workload generators in
``repro.workloads.generators`` and across random set programs, in all four
on/off combinations of ``use_indexes`` × ``plan_joins``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.core import atom, const, setvalue, fact, Program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.workloads import (
    chain_graph,
    cycle_graph,
    grid_graph,
    parts_database,
    parts_world,
    random_graph,
    random_sets,
    set_database,
)

MODES = [
    {"use_indexes": True, "plan_joins": True},
    {"use_indexes": True, "plan_joins": False},
    {"use_indexes": False, "plan_joins": True},
    {"use_indexes": False, "plan_joins": False},
]


def models_for(program, db=None, **extra):
    """The model's sorted atoms under every index/planner combination."""
    out = []
    for mode in MODES:
        options = EvalOptions(**mode, **extra)
        model = Evaluator(program, db, builtins=with_set_builtins(),
                          options=options).run()
        out.append(model.interpretation.sorted_atoms())
    return out


def assert_all_agree(program, db=None, **extra):
    indexed, *others = models_for(program, db, **extra)
    for other in others:
        assert other == indexed


TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


def graph_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


@pytest.mark.parametrize("edges", [
    chain_graph(24),
    cycle_graph(12),
    grid_graph(4, 4),
    random_graph(16, 40, seed=3),
    random_graph(10, 25, seed=7),
])
def test_transitive_closure_workloads(edges):
    db = graph_db(edges)
    for semi_naive in (True, False):
        assert_all_agree(TC, db, semi_naive=semi_naive)


SETPREDS = parse_program("""
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).
subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).
over(X, Y) :- s(X), s(Y), A in X, A in Y.
""")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_set_predicate_workloads(seed):
    db = set_database("s", 10, universe=12, max_size=4, seed=seed)
    assert_all_agree(SETPREDS, db)


PARTS = parse_program("""
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
""")


@pytest.mark.parametrize("depth,fanout", [(2, 2), (3, 2)])
def test_parts_workload(depth, fanout):
    world = parts_world(depth=depth, fanout=fanout, seed=5)
    db = parts_database(world)
    assert_all_agree(PARTS, db)
    # And the model is actually right, not just self-consistent.
    model = Evaluator(PARTS, db, builtins=with_set_builtins()).run()
    derived = dict(model.relation("obj_cost"))
    for obj, expected in world.expected.items():
        if obj in world.parts:
            assert derived[obj] == expected


@settings(max_examples=25)
@given(
    n_sets=st.integers(2, 8),
    universe=st.integers(3, 10),
    seed=st.integers(0, 1000),
)
def test_random_set_databases(n_sets, universe, seed):
    sets = random_sets(n_sets, universe, max_size=4, seed=seed)
    clauses = [fact(atom("s", setvalue([const(e) for e in s]))) for s in sets]
    program = Program.of(*clauses, *SETPREDS.clauses)
    assert_all_agree(program)


# ---------------------------------------------------------------------------
# Index consistency under interleaved add/remove (incremental maintenance
# relies on `Interpretation.remove` keeping every built index exact).
# ---------------------------------------------------------------------------

from itertools import combinations

from repro.semantics.interpretation import Interpretation

_CS = [const(c) for c in ("a", "b", "c")]
ATOM_SPACE = (
    [atom("p", u, v) for u in _CS for v in _CS]
    + [atom("q", u) for u in _CS]
    + [atom("p3", u, v, w) for u in _CS for v in _CS for w in _CS][:10]
)


def _position_signatures(arity):
    positions = range(arity)
    return [
        tuple(c) for r in range(1, arity + 1)
        for c in combinations(positions, r)
    ]


def _assert_indexes_match_scan(interp):
    """Every (pred, positions, key) bucket equals a fresh linear scan."""
    for pred in {"p", "q", "p3"}:
        facts = list(interp.facts_of(pred))
        arities = {f.arity for f in facts} or {1}
        for arity in arities:
            for positions in _position_signatures(arity):
                keys = {tuple(f.args[i] for i in positions)
                        for f in facts if f.arity == arity}
                keys.add(tuple(_CS[0] for _ in positions))  # absent key
                for key in keys:
                    scan = [
                        f for f in facts
                        if f.arity == arity
                        and tuple(f.args[i] for i in positions) == key
                    ]
                    got = list(interp.candidates(pred, positions, key))
                    assert sorted(map(str, got)) == sorted(map(str, scan))
                    assert (interp.candidate_count(pred, positions, key)
                            == len(scan))


@settings(max_examples=30)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(ATOM_SPACE) - 1)),
        min_size=1, max_size=50,
    ),
    probe_at=st.integers(0, 10),
)
def test_remove_keeps_indexes_consistent(ops, probe_at):
    """candidates()/candidate_count() == linear scan after add/remove churn.

    The ``probe_at`` query forces index construction mid-sequence, so later
    adds *and removes* exercise the incremental index-maintenance paths,
    not the lazy rebuild."""
    interp = Interpretation()
    live: set = set()
    for step, (is_add, idx) in enumerate(ops):
        a = ATOM_SPACE[idx]
        if is_add:
            assert interp.add(a) == (a not in live)
            live.add(a)
        else:
            assert interp.remove(a) == (a in live)
            live.discard(a)
        if step == probe_at:
            # Build several indexes now; they must stay exact afterwards.
            interp.candidates("p", (0,), (_CS[0],))
            interp.candidates("p", (0, 1), (_CS[0], _CS[1]))
            interp.candidates("q", (0,), (_CS[2],))
            interp.candidates("p3", (1,), (_CS[1],))
    assert set(interp.atoms()) == live
    assert len(interp) == len(live)
    _assert_indexes_match_scan(interp)
