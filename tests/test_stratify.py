"""Tests for stratification (Section 4.2 / [ABW86], grouping per Section 6)."""

import pytest

from repro.core import (
    GroupingClause,
    Program,
    StratificationError,
    atom,
    fact,
    horn,
    neg,
    pos,
    var_a,
)
from repro.engine.stratify import is_stratified, stratify

x, y = var_a("x"), var_a("y")
a = __import__("repro.core", fromlist=["const"]).const("a")


class TestPositivePrograms:
    def test_single_stratum(self):
        p = Program.of(
            fact(atom("e", a, a)),
            horn(atom("t", x, y), atom("e", x, y)),
            horn(atom("t", x, y), atom("t", x, x), atom("t", x, y)),
        )
        s = stratify(p)
        assert s.depth == 1

    def test_positive_recursion_allowed(self):
        p = Program.of(horn(atom("p", x), atom("p", x)))
        assert is_stratified(p)


class TestNegation:
    def test_negation_forces_higher_stratum(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), pos(atom("q", x)), neg(atom("r", x))),
            horn(atom("r", x), atom("q", x)),
        )
        s = stratify(p)
        assert s.stratum_of["r"] < s.stratum_of["p"]
        assert s.stratum_of["q"] <= s.stratum_of["r"]

    def test_negative_cycle_rejected(self):
        p = Program.of(
            horn(atom("p", x), neg(atom("q", x))),
            horn(atom("q", x), neg(atom("p", x))),
        )
        with pytest.raises(StratificationError):
            stratify(p)
        assert not is_stratified(p)

    def test_negative_self_loop_rejected(self):
        p = Program.of(horn(atom("p", x), neg(atom("p", x))))
        with pytest.raises(StratificationError):
            stratify(p)

    def test_clauses_bucketed_by_stratum(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("r", x), atom("q", x)),
            horn(atom("p", x), pos(atom("q", x)), neg(atom("r", x))),
        )
        s = stratify(p)
        heads_by_stratum = [
            {c.head.pred for c in bucket} for bucket in s.strata
        ]
        assert "p" in heads_by_stratum[-1]
        assert "p" not in heads_by_stratum[0]


class TestGrouping:
    def grouping(self, pred, body_pred):
        return GroupingClause(
            pred=pred,
            head_args=(x,),
            group_pos=1,
            group_var=y,
            body=(pos(atom(body_pred, x, y)),),
        )

    def test_grouping_acts_like_negation(self):
        p = Program.of(
            fact(atom("c", a, a)),
            self.grouping("g", "c"),
        )
        s = stratify(p)
        assert s.stratum_of["c"] < s.stratum_of["g"]

    def test_grouping_cycle_rejected(self):
        p = Program.of(
            self.grouping("g", "h"),
            horn(atom("h", x, y), atom("g", x, y)),
        )
        with pytest.raises(StratificationError):
            stratify(p)


class TestIgnoreAndExtras:
    def test_ignored_predicates_form_no_nodes(self):
        p = Program.of(
            horn(atom("p", x), pos(atom("neq", x, x))),
        )
        s = stratify(p, ignore={"neq"})
        assert "neq" not in s.stratum_of

    def test_extra_negative_edges(self):
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), atom("q", x)),
        )
        s = stratify(p, extra_negative=[("p", "q")])
        assert s.stratum_of["q"] < s.stratum_of["p"]

    def test_deep_chain(self):
        clauses = [fact(atom("p0", a))]
        for i in range(6):
            clauses.append(
                horn(atom(f"p{i+1}", x), neg(atom(f"p{i}", x)))
            )
        s = stratify(Program.of(*clauses))
        assert s.depth == 7
        for i in range(6):
            assert s.stratum_of[f"p{i}"] < s.stratum_of[f"p{i+1}"]
