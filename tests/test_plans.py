"""The plan IR pipeline: compilation shapes, executor semantics, fallbacks.

Covers the planner/executor split of DESIGN.md "Plan IR and executor":

* structural tests — what rule bodies compile to (Scan/Join trees, delta
  variants, AntiJoin, Unnest, Compute, GroupBy) and which bodies stay on
  the tuple path (quantifiers, active-domain heads);
* **AntiJoin under stratified negation** — negation-bearing strata agree
  with the tuple path and with hand-computed extensions;
* **Distinct under set-valued columns** — set cells deduplicate
  canonically through Project/Distinct;
* **delta-substituted Scans** — a pinned occurrence reads the delta
  relation while other occurrences of the same predicate read the full
  interpretation;
* the ``PlanInapplicable`` runtime fallback (ELPS ``u`` variables bound
  to non-sets) keeps the model identical to the tuple path;
* Example 4 round-trips: the value-level algebra and the compiled-plan
  engine compute the same nested relations.
"""

import pytest

from repro import parse_program
from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    member,
    setvalue,
    var_a,
)
from repro.core.terms import Var
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.executor import Executor
from repro.engine.ir import (
    AntiJoin,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Scan,
    Unnest,
    walk_plan,
)
from repro.engine.planner import compile_grouping, compile_rule, head_plan
from repro.engine.setops import with_set_builtins
from repro.semantics.interpretation import Interpretation


def models_agree(program, db=None, **extra):
    """The model with plans on, asserted equal to the tuple path's."""
    on = Evaluator(program, db, builtins=with_set_builtins(),
                   options=EvalOptions(compile_plans=True, **extra)).run()
    off = Evaluator(program, db, builtins=with_set_builtins(),
                    options=EvalOptions(compile_plans=False, **extra)).run()
    assert on.interpretation.atoms() == off.interpretation.atoms()
    return on


TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


class TestCompilation:
    def test_join_tree_shape(self):
        cp = compile_rule(TC.clauses[1], {})
        assert cp.is_set
        ops = [n.__class__ for n in walk_plan(cp.root)]
        assert ops.count(Join) == 1
        assert ops.count(Scan) == 2

    def test_head_plan_projects_and_dedupes(self):
        node = head_plan(compile_rule(TC.clauses[1], {}))
        kinds = [n.__class__.__name__ for n in walk_plan(node)]
        assert kinds[0] == "Distinct"
        assert "Project" in kinds

    def test_delta_variant_pins_one_scan(self):
        # Occurrence 1 is t(Y, Z); its Scan must be delta-flagged and the
        # e(X, Y) occurrence must read the full relation.
        cp = compile_rule(TC.clauses[1], {}, delta_index=1)
        scans = [n for n in walk_plan(cp.root) if isinstance(n, Scan)]
        flags = {str(s.atom): s.delta for s in scans}
        assert flags == {"e(X, Y)": False, "t(Y, Z)": True}

    def test_quantifier_body_is_tuple_mode(self):
        p = parse_program("subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).")
        tuple_reasons = [
            compile_rule(c, {}).reason
            for c in p.clauses if c.quantifiers
        ]
        assert tuple_reasons and all(
            "quantifier" in r for r in tuple_reasons
        )

    def test_active_domain_head_is_tuple_mode(self):
        p = parse_program("p(X, Y) :- q(X).")
        cp = compile_rule(p.clauses[0], {})
        assert not cp.is_set
        assert "active domain" in cp.reason

    def test_builtin_compute_and_member_unnest(self):
        p = parse_program("s(X, N1) :- r(X, S), E in S, N1 = 1.")
        cp = compile_rule(p.clauses[0], with_set_builtins())
        kinds = {n.__class__ for n in walk_plan(cp.root)}
        assert Unnest in kinds

    def test_grouping_compiles_to_groupby(self):
        p = parse_program("all_y(X, <Y>) :- e(X, Y).")
        g = p.clauses[0]
        cp = compile_grouping(g, {})
        assert cp.is_set
        assert isinstance(cp.root, GroupBy)


class TestAntiJoinStratifiedNegation:
    PROGRAM = parse_program("""
    reach(X) :- start(X).
    reach(Y) :- reach(X), e(X, Y).
    node(X) :- e(X, Y).
    node(Y) :- e(X, Y).
    unreached(X) :- node(X), not reach(X).
    """)

    def db(self):
        db = Database()
        for u, v in [("a", "b"), ("b", "c"), ("d", "e")]:
            db.add("e", u, v)
        db.add("start", "a")
        return db

    def test_compiles_to_anti_join(self):
        rule = next(
            c for c in self.PROGRAM.clauses if c.head.pred == "unreached"
        )
        cp = compile_rule(rule, {})
        assert cp.is_set
        assert any(isinstance(n, AntiJoin) for n in walk_plan(cp.root))

    def test_model_matches_tuple_path(self):
        model = models_agree(self.PROGRAM, self.db())
        assert model.relation("unreached") == {("d",), ("e",)}
        assert model.relation("reach") == {("a",), ("b",), ("c",)}

    def test_negated_builtin_in_anti_join(self):
        p = parse_program("""
        keep(X, Y) :- e(X, Y), not gt(X, Y).
        """)
        db = Database()
        for u, v in [(1, 2), (3, 1), (2, 2)]:
            db.add("e", u, v)
        model = models_agree(p, db)
        assert model.relation("keep") == {(1, 2), (2, 2)}


class TestDistinctSetColumns:
    def test_set_valued_projection_dedupes(self):
        # Several owners share the same set value; projecting the set
        # column must deduplicate canonical SetValues.
        db = Database()
        db.add("has", "alice", frozenset({"a", "b"}))
        db.add("has", "bob", frozenset({"b", "a"}))
        db.add("has", "carol", frozenset({"c"}))
        from repro.core import var_s

        S = var_s("S")
        p = Program.of(
            clause(atom("keep", S), body=[atom("has", var_a("X"), S)])
        )
        model = models_agree(p, db)
        assert model.relation("keep") == {
            (frozenset({"a", "b"}),), (frozenset({"c"}),)
        }

    def test_distinct_after_unnest(self):
        db = Database()
        db.add("has", "alice", frozenset({"a", "b"}))
        db.add("has", "bob", frozenset({"a"}))
        p = parse_program("elem(E) :- has(X, S), E in S.")
        model = models_agree(p, db)
        assert model.relation("elem") == {("a",), ("b",)}


class TestDeltaScans:
    def test_delta_scan_reads_delta_only(self):
        interp = Interpretation()
        for u, v in [("a", "b"), ("b", "c"), ("c", "d")]:
            interp.add(atom("e", const(u), const(v)))
        for u, v in [("b", "c"), ("b", "d"), ("c", "d")]:
            interp.add(atom("t", const(u), const(v)))
        rule = TC.clauses[1]
        node = head_plan(compile_rule(rule, {}, delta_index=1))
        # Only t(c, d) is in the delta: the pinned scan must ignore the
        # other two t facts even though they are in the interpretation.
        executor = Executor(
            interp, delta={"t": frozenset({atom("t", const("c"), const("d"))})}
        )
        heads = executor.heads(node, rule.head)
        assert set(map(str, heads)) == {"t(b, d)"}

    def test_seminaive_chain_agrees(self):
        db = Database()
        for i in range(12):
            db.add("e", f"v{i}", f"v{i+1}")
        for semi_naive in (True, False):
            model = models_agree(TC, db, semi_naive=semi_naive)
            assert len(model.relation("t")) == 12 * 13 // 2

    def test_executor_stats_populated(self):
        db = Database()
        for i in range(12):
            db.add("e", f"v{i}", f"v{i+1}")
        model = Evaluator(TC, db).run()
        stats = model.report.exec
        assert stats.batches > 0
        assert stats.rows_out > 0
        assert "Scan" in stats.per_op
        assert "Join" in stats.per_op


class TestRuntimeFallback:
    def test_u_variable_member_falls_back(self):
        # ELPS: U ranges over atoms *and* sets.  The planner predicts the
        # membership is executable; at run time the atom-valued rows raise
        # PlanInapplicable and the rule re-runs on the tuple path, so the
        # model is identical either way.
        from repro.core import MODE_ELPS

        U = Var("U", "u")
        x = var_a("x")
        p = Program.of(
            fact(atom("p", const("a"))),
            fact(atom("p", setvalue([const("b")]))),
            clause(atom("m", x), body=[atom("p", U), member(x, U)]),
            mode=MODE_ELPS,
        )
        on = Evaluator(p, options=EvalOptions(compile_plans=True)).run()
        off = Evaluator(p, options=EvalOptions(compile_plans=False)).run()
        assert on.interpretation.atoms() == off.interpretation.atoms()
        assert on.holds_str("m(b)")
        assert not on.holds_str("m(a)")


class TestExample4RoundTrip:
    def schema_rel(self):
        from repro.nested.relation import NestedRelation
        from repro.nested.schema import ATOMIC, SETOF, Attribute, Schema

        schema = Schema((
            Attribute("who", ATOMIC), Attribute("items", SETOF),
        ))
        rel = NestedRelation(schema)
        rel.insert("alice", {"apple", "pear"})
        rel.insert("bob", {"apple"})
        return rel

    def test_unnest_algebra_vs_engine(self):
        from repro.nested import algebra
        from repro.nested.bridge import unnest_via_engine

        rel = self.schema_rel()
        assert unnest_via_engine(rel, "items") == algebra.unnest(rel, "items")

    def test_nest_algebra_vs_engine(self):
        from repro.nested import algebra
        from repro.nested.bridge import nest_via_engine

        rel = self.schema_rel()
        flat = algebra.unnest(rel, "items")
        assert nest_via_engine(flat, "items") == algebra.nest(flat, "items")

    def test_unnest_nest_identity_on_flat(self):
        from repro.nested import algebra

        flat = algebra.unnest(self.schema_rel(), "items")
        assert algebra.unnest(algebra.nest(flat, "items"), "items") == flat


class TestMixedWorkloads:
    def test_parts_explosion_agrees(self):
        from repro.workloads import parts_database, parts_world

        PARTS = parse_program("""
        item_cost(P, C) :- cost(P, C).
        item_cost(P, C) :- obj_cost(P, C).
        need(S) :- parts(P, S).
        need(Y) :- need(Z), choose_min(X, Y, Z).
        sum_costs({}, 0).
        sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                           item_cost(P, C), sum_costs(Y, M), M + C = K.
        obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
        """)
        world = parts_world(depth=2, fanout=2, seed=11)
        model = models_agree(PARTS, parts_database(world))
        derived = dict(model.relation("obj_cost"))
        for obj, expected in world.expected.items():
            if obj in world.parts:
                assert derived[obj] == expected

    def test_grouping_with_negation_body(self):
        p = parse_program("""
        good(X) :- e(X, Y).
        blocked(b).
        all_y(X, <Y>) :- e(X, Y), not blocked(X).
        """)
        db = Database()
        for u, v in [("a", "b"), ("a", "c"), ("b", "d")]:
            db.add("e", u, v)
        model = models_agree(p, db)
        assert model.relation("all_y") == {("a", frozenset({"b", "c"}))}
