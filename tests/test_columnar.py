"""The columnar executor: ID dictionary, column cache, kernels, fallbacks.

Covers the pieces DESIGN.md "Columnar execution" names:

* **term dictionary** — dense, stable, structural IDs (equal terms share
  one ID; assigned IDs never move);
* **relation column cache** — ``Interpretation.id_columns`` built
  lazily, extended by append-only prefix, dropped on remove, ``None``
  for mixed arities, and safely shared with frozen snapshots;
* **kernel equivalence** — ``ColumnarExecutor`` computes exactly the
  row executor's batches, distinct batches and shaped batches, for full
  and delta-substituted scans (a hypothesis sweep randomizes both the
  relation and the pinned delta);
* **counters** — ``ExecStats`` observes columnar vs row-fallback node
  executions and the encode/decode row flow;
* **gating** — ``make_executor`` hands back the row executor when
  columnar is off or numpy is missing, and ``EvalOptions.columnar``
  honours ``REPRO_COLUMNAR``.
"""

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")  # the kernels under test need it

from repro import parse_program
from repro.core import atom, const
from repro.core.terms import TERM_DICT, setvalue, term_id, term_of
from repro.engine import Database, Evaluator
from repro.engine.columnar import (
    ColumnarExecutor,
    annotated_pretty,
    columnar_capable,
    make_executor,
    plan_mode_counts,
)
from repro.engine.evaluation import EvalOptions, _default_columnar
from repro.engine.executor import Executor
from repro.engine.ir import ExecStats
from repro.engine.planner import compile_rule, head_plan
from repro.engine.setops import with_set_builtins
from repro.semantics.interpretation import Interpretation

TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")

JOIN_RULE = TC.clauses[1]


# ---------------------------------------------------------------------------
# Term dictionary
# ---------------------------------------------------------------------------


class TestTermDict:
    def test_ids_are_stable_and_dense(self):
        t = const("columnar-dict-probe-1")
        before = len(TERM_DICT)
        i = term_id(t)
        assert i == before  # fresh terms take the next dense slot
        assert len(TERM_DICT) == before + 1
        assert term_id(t) == i  # never remapped
        assert term_of(i) is t

    def test_structurally_equal_terms_share_an_id(self):
        a = setvalue([const("x"), const("y")])
        b = setvalue([const("y"), const("x")])
        assert term_id(a) == term_id(b)

    def test_distinct_terms_get_distinct_ids(self):
        ids = {term_id(const(f"columnar-dict-probe-2-{k}")) for k in range(50)}
        assert len(ids) == 50


# ---------------------------------------------------------------------------
# Relation column cache
# ---------------------------------------------------------------------------


def _ids(entry, pos):
    arity, n, bufs = entry
    col = np.frombuffer(bufs[pos], dtype=np.int64)
    assert col.size == n
    return col.tolist()


class TestIdColumns:
    def facts(self, n):
        return [atom("e", const(f"u{i}"), const(f"v{i}")) for i in range(n)]

    def test_columns_encode_the_relation_in_order(self):
        interp = Interpretation()
        facts = self.facts(5)
        for f in facts:
            interp.add(f)
        entry = interp.id_columns("e")
        assert entry[0] == 2 and entry[1] == 5
        assert _ids(entry, 0) == [term_id(f.args[0]) for f in facts]
        assert _ids(entry, 1) == [term_id(f.args[1]) for f in facts]

    def test_append_extends_the_cached_prefix(self):
        interp = Interpretation()
        for f in self.facts(3):
            interp.add(f)
        first = interp.id_columns("e")
        for f in self.facts(6)[3:]:
            interp.add(f)
        second = interp.id_columns("e")
        assert second[1] == 6
        # The old encoding is a byte-prefix of the new one (only the new
        # facts were encoded).
        assert all(b2.startswith(b1)
                   for b1, b2 in zip(first[2], second[2]))

    def test_remove_drops_the_entry_for_rebuild(self):
        interp = Interpretation()
        facts = self.facts(4)
        for f in facts:
            interp.add(f)
        assert interp.id_columns("e")[1] == 4
        interp.remove(facts[1])
        entry = interp.id_columns("e")
        assert entry[1] == 3
        assert _ids(entry, 0) == [
            term_id(f.args[0]) for f in facts if f != facts[1]
        ]

    def test_empty_and_unknown_relations_have_no_columns(self):
        interp = Interpretation()
        assert interp.id_columns("nope") is None

    def test_mixed_arity_is_uncacheable(self):
        interp = Interpretation()
        interp.add(atom("p", const("a")))
        interp.add(atom("p", const("a"), const("b")))
        assert interp.id_columns("p") is None
        assert interp.id_columns("p") is None  # memoized, not re-scanned

    def test_snapshot_shares_columns_safely(self):
        interp = Interpretation()
        facts = self.facts(3)
        for f in facts:
            interp.add(f)
        entry = interp.id_columns("e")
        snap = interp.snapshot()
        for f in self.facts(5)[3:]:
            interp.add(f)
        assert interp.id_columns("e")[1] == 5
        # The frozen snapshot still sees exactly its three facts, through
        # the entry captured before the writer extended.
        snap_entry = snap.id_columns("e")
        assert snap_entry == entry and snap_entry[1] == 3


# ---------------------------------------------------------------------------
# Kernel equivalence with the row executor
# ---------------------------------------------------------------------------


def _graph_interp(edges, closure=()):
    interp = Interpretation()
    for u, v in edges:
        interp.add(atom("e", const(f"n{u}"), const(f"n{v}")))
    for u, v in closure:
        interp.add(atom("t", const(f"n{u}"), const(f"n{v}")))
    return interp


def _row_key(row):
    return tuple(map(str, row))


def _assert_same_rows(interp, delta=None, delta_index=None):
    cp = compile_rule(JOIN_RULE, {}, delta_index=delta_index)
    assert cp.is_set
    node = head_plan(cp)
    row_exec = Executor(interp, delta=delta)
    col_exec = ColumnarExecutor(interp, delta=delta)
    col_exec.min_vector_rows = 0   # force the kernels on tiny relations
    # head_plan roots at Distinct, so batches are sets: order-insensitive.
    assert (sorted(map(_row_key, col_exec.batch(node)))
            == sorted(map(_row_key, row_exec.batch(node))))
    assert (sorted(map(_row_key, col_exec.distinct_batch(node)))
            == sorted(map(_row_key, row_exec.distinct_batch(node))))
    shape = tuple(range(len(node.out_vars)))[:1]
    assert (sorted(map(_row_key, col_exec.shaped_batch(node, shape)))
            == sorted(map(_row_key, row_exec.shaped_batch(node, shape))))


class TestKernelEquivalence:
    def test_full_scan_join(self):
        interp = _graph_interp(
            [(0, 1), (1, 2), (2, 3), (3, 1)],
            closure=[(1, 2), (2, 3), (1, 3)],
        )
        _assert_same_rows(interp)

    def test_delta_substituted_scan(self):
        interp = _graph_interp(
            [(0, 1), (1, 2), (2, 3)],
            closure=[(1, 2), (2, 3), (1, 3)],
        )
        delta = {"t": frozenset({atom("t", const("n2"), const("n3"))})}
        _assert_same_rows(interp, delta=delta, delta_index=1)

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=0, max_size=24,
        ),
        closure=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=0, max_size=24,
        ),
        pin=st.sampled_from([None, 0, 1]),
        delta_bits=st.integers(0, 2**24 - 1),
    )
    def test_random_relations_and_deltas_agree(
        self, edges, closure, pin, delta_bits
    ):
        interp = _graph_interp(edges, closure=closure)
        delta = None
        if pin is not None:
            pred = ("e", "t")[pin]
            pool = sorted(interp.facts_of(pred), key=str)
            delta = {pred: frozenset(
                f for i, f in enumerate(pool) if delta_bits >> i & 1
            )}
        _assert_same_rows(interp, delta=delta, delta_index=pin)


# ---------------------------------------------------------------------------
# Counters and plan annotation
# ---------------------------------------------------------------------------


class TestCounters:
    def test_columnar_run_counts_col_nodes_and_decodes(self):
        db = Database()
        for i in range(100):   # above the size gate's _MIN_VECTOR_ROWS
            db.add("e", f"v{i}", f"v{i + 1}")
        model = Evaluator(
            TC, db, options=EvalOptions(columnar=True)
        ).run()
        stats = model.report.exec
        assert stats.col_nodes > 0
        assert stats.rows_decoded > 0
        summary = stats.columnar_summary()
        assert set(summary) == {
            "col_nodes", "row_nodes", "rows_encoded", "rows_decoded"
        }

    def test_row_fallback_nodes_are_counted(self):
        db = Database()
        db.add("has", "alice", frozenset({"a", "b"}))
        p = parse_program("elem(E) :- has(X, S), E in S.")
        model = Evaluator(
            p, db, builtins=with_set_builtins(),
            options=EvalOptions(columnar=True),
        ).run()
        assert model.report.exec.row_nodes > 0  # Unnest is row-only

    def test_plan_annotation_tags_every_node(self):
        cp = compile_rule(JOIN_RULE, {})
        node = head_plan(cp)
        col, row = plan_mode_counts(node, {})
        assert col > 0 and row == 0
        text = annotated_pretty(node, {})
        assert "·col" in text and "·row" not in text


# ---------------------------------------------------------------------------
# Gating
# ---------------------------------------------------------------------------


class TestGating:
    def test_make_executor_respects_the_flag(self):
        interp = Interpretation()
        assert isinstance(
            make_executor(interp, {}, columnar=True), ColumnarExecutor
        )
        ex = make_executor(interp, {}, columnar=False)
        assert type(ex) is Executor

    def test_make_executor_degrades_without_numpy(self, monkeypatch):
        import repro.engine.columnar as columnar

        monkeypatch.setattr(columnar, "_np", None)
        ex = columnar.make_executor(Interpretation(), {}, columnar=True)
        assert type(ex) is Executor

    def test_eval_options_honour_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        assert _default_columnar() is True
        assert EvalOptions().columnar is True
        for off in ("0", "false", "No", "OFF"):
            monkeypatch.setenv("REPRO_COLUMNAR", off)
            assert EvalOptions().columnar is False
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        assert EvalOptions().columnar is True

    def test_small_inputs_stay_on_the_row_path(self):
        """The size gate: a plan fed by a tiny scan leaf runs entirely
        row-at-a-time (fixed ndarray setup loses to indexed probes on
        e.g. single-fact maintenance deltas), and forcing the gate off
        vectorizes the same plan."""
        interp = _graph_interp([(0, 1), (1, 2)], closure=[(1, 2)])
        cp = compile_rule(JOIN_RULE, {})
        node = head_plan(cp)
        ex = ColumnarExecutor(interp)
        assert not ex._vector_worthwhile(node)
        ex.batch(node)
        assert ex.stats.col_nodes == 0 and ex.stats.row_nodes > 0
        forced = ColumnarExecutor(interp)
        forced.min_vector_rows = 0
        assert forced._vector_worthwhile(node)
        forced.batch(node)
        assert forced.stats.col_nodes > 0

    def test_capability_is_per_node(self):
        p = parse_program("s(X, N1) :- r(X, S), E in S, N1 = 1.")
        cp = compile_rule(p.clauses[0], with_set_builtins())
        col, row = plan_mode_counts(cp.root, with_set_builtins())
        assert row > 0  # Unnest/Compute stay on the row kernels
        assert not columnar_capable(cp.root, with_set_builtins()) or col > 0
