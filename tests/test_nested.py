"""Tests for the nested-relation substrate and its LPS bridge (Example 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Evaluator, solve
from repro.nested import (
    ATOMIC,
    SETOF,
    Attribute,
    NestedRelation,
    Schema,
    SchemaError,
    difference,
    natural_join,
    nest,
    nest_program,
    project,
    relation_from_model,
    relation_to_database,
    rename,
    select,
    union,
    unnest,
    unnest_program,
)


def parts_relation() -> NestedRelation:
    r = NestedRelation(Schema.of("part", "comps*"))
    r.insert("bike", {"frame", "wheel"})
    r.insert("cart", {"wheel", "board"})
    r.insert("brick", set())
    return r


class TestSchema:
    def test_of_parses_star(self):
        s = Schema.of("a", "b*")
        assert s.attribute("a").kind == ATOMIC
        assert s.attribute("b").kind == SETOF

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema.of("a").index_of("z")

    def test_project_and_drop(self):
        s = Schema.of("a", "b*", "c")
        assert s.project(["c", "a"]).names() == ("c", "a")
        assert s.drop("b").names() == ("a", "c")

    def test_is_flat(self):
        assert Schema.of("a", "b").is_flat()
        assert not Schema.of("a", "b*").is_flat()


class TestRelation:
    def test_insert_checks_kinds(self):
        r = NestedRelation(Schema.of("a", "b*"))
        r.insert("x", {"p"})
        with pytest.raises(SchemaError):
            r.insert({"x"}, {"p"})
        with pytest.raises(SchemaError):
            r.insert("x", "p")

    def test_nested_sets_rejected(self):
        r = NestedRelation(Schema.of("b*"))
        with pytest.raises(SchemaError):
            r.insert({frozenset({"a"})})

    def test_dedup(self):
        r = NestedRelation(Schema.of("a"))
        r.insert("x")
        r.insert("x")
        assert len(r) == 1

    def test_arity_check(self):
        r = NestedRelation(Schema.of("a", "b"))
        with pytest.raises(SchemaError):
            r.insert("x")


class TestClassicalOperators:
    def test_select(self):
        r = parts_relation()
        out = select(r, lambda row: "wheel" in row["comps"])
        assert len(out) == 2

    def test_project(self):
        out = project(parts_relation(), ["part"])
        assert out.rows() == frozenset({("bike",), ("cart",), ("brick",)})

    def test_rename(self):
        out = rename(parts_relation(), {"part": "object"})
        assert "object" in out.schema.names()

    def test_union_difference(self):
        r1, r2 = parts_relation(), parts_relation()
        assert union(r1, r2) == r1
        assert len(difference(r1, r2)) == 0

    def test_join_on_atomic(self):
        r = parts_relation()
        prices = NestedRelation(Schema.of("part", "price"))
        prices.insert("bike", 100)
        joined = natural_join(r, prices)
        assert len(joined) == 1
        assert joined.schema.names() == ("part", "comps", "price")

    def test_join_kind_conflict(self):
        r1 = NestedRelation(Schema.of("a*"))
        r2 = NestedRelation(Schema.of("a"))
        with pytest.raises(SchemaError):
            natural_join(r1, r2)


class TestNestUnnest:
    def test_unnest(self):
        out = unnest(parts_relation(), "comps")
        assert ("bike", "wheel") in out.rows()
        assert out.schema.attribute("comps").kind == ATOMIC

    def test_unnest_drops_empty_sets(self):
        out = unnest(parts_relation(), "comps")
        assert not any(row[0] == "brick" for row in out)

    def test_unnest_requires_set_attribute(self):
        with pytest.raises(SchemaError):
            unnest(parts_relation(), "part")

    def test_nest_groups(self):
        flat = NestedRelation(Schema.of("k", "v"))
        flat.extend([("a", 1), ("a", 2), ("b", 1)])
        out = nest(flat, "v")
        assert out.rows() == frozenset({
            ("a", frozenset({1, 2})), ("b", frozenset({1})),
        })

    def test_unnest_nest_identity_without_empty_sets(self):
        r = NestedRelation(Schema.of("part", "comps*"))
        r.insert("bike", {"frame", "wheel"})
        r.insert("cart", {"board"})
        assert nest(unnest(r, "comps"), "comps") == r

    def test_nest_unnest_identity_on_flat(self):
        flat = NestedRelation(Schema.of("k", "v"))
        flat.extend([("a", 1), ("a", 2), ("b", 1)])
        assert unnest(nest(flat, "v"), "v") == flat

    def test_classical_information_loss(self):
        """nest(unnest(R)) loses rows with empty sets — the classical
        caveat, pinned as a test."""
        r = parts_relation()
        back = nest(unnest(r, "comps"), "comps")
        assert back != r
        assert len(back) == len(r) - 1


class TestBridge:
    def test_unnest_program_matches_algebra(self):
        """Example 4: the LPS rule and the algebra operator agree."""
        r = parts_relation()
        schema = r.schema
        db = relation_to_database(r, "r")
        program = unnest_program(schema, "comps", "r", "s")
        m = Evaluator(program, db).run()
        via_rule = relation_from_model(
            m, "s", schema.with_kind("comps", ATOMIC)
        )
        assert via_rule == unnest(r, "comps")

    def test_nest_program_matches_algebra(self):
        flat = NestedRelation(Schema.of("k", "v"))
        flat.extend([("a", 1), ("a", 2), ("b", 1)])
        db = relation_to_database(flat, "f")
        program = nest_program(flat.schema, "v", "f", "g")
        m = Evaluator(program, db).run()
        via_rule = relation_from_model(
            m, "g", flat.schema.with_kind("v", SETOF)
        )
        assert via_rule == nest(flat, "v")


# -- property: nest/unnest laws on random relations --------------------------

values = st.sampled_from(["u", "v", "w", 1, 2])


@st.composite
def flat_relations(draw):
    rows = draw(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), values), max_size=8
    ))
    r = NestedRelation(Schema.of("k", "v"))
    r.extend(rows)
    return r


@settings(max_examples=40, deadline=None)
@given(r=flat_relations())
def test_unnest_nest_identity_property(r):
    assert unnest(nest(r, "v"), "v") == r


@settings(max_examples=40, deadline=None)
@given(r=flat_relations())
def test_nest_key_functional(r):
    """After nesting, the grouped attribute is functionally determined."""
    nested = nest(r, "v")
    keys = [row[0] for row in nested]
    assert len(keys) == len(set(keys))
