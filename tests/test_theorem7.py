"""Theorem 7: no LPS program over a language whose only non-special
predicate is ternary ``p`` defines union.

The theorem quantifies over all programs, so it cannot be checked
exhaustively; what CAN be machine-checked are the two pillars its proof
(Appendix A) rests on, plus the failure of concrete candidate programs:

1. **The α-extension argument.**  The proof takes a shortest derivation of
   ``p(A, B, C)`` with C larger than any set constructor in the program,
   picks a fresh atom α, and shows the derivation still goes through with
   ``C ∪ {α}`` — contradicting ``A ∪ B = C``.  We mechanise the heart of
   it: for quantifier-free programs whose head is ``p(t1, t2, Z)``, a
   derivation of ``p(A,B,C)`` yields one of ``p(A,B,C ∪ {α})``.

2. **Candidate refutation.**  Hand-written single-predicate candidate
   programs for union (the ones the paper's case analysis dismisses)
   provably fail the specification on generated witnesses.

By contrast, WITH an auxiliary predicate, union is definable (Example 3 /
Theorem 6) — tested in ``test_positive_transform.py`` — which is exactly
the boundary Theorem 7 draws.
"""

import pytest

from repro.core import (
    Program,
    SetExpr,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.semantics import Universe, least_fixpoint

x, y, z, w = var_a("x"), var_a("y"), var_a("z"), var_a("w")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
a, b, c, alpha = const("a"), const("b"), const("c"), const("alpha")


def union_spec_holds(m, universe) -> bool:
    """Whether predicate ``p`` is exactly union on the universe's sets."""
    for A in universe.sets:
        for B in universe.sets:
            want = setvalue(list(A) + list(B))
            for C in universe.sets:
                is_union = C == want
                if m.holds(atom("p", A, B, C)) != is_union:
                    return False
    return True


class TestCandidateRefutation:
    """Single-predicate candidates for union all fail on a witness."""

    def candidates(self):
        # Candidate 1: the naive "double inclusion" without the covering
        # direction: p(X, Y, Z) :- (∀x∈X)(x∈Z) ∧ (∀y∈Y)(y∈Z).
        cand1 = Program.of(
            clause(
                atom("p", X, Y, Z),
                [(x, X), (y, Y)],
                [member(x, Z), member(y, Z)],
            )
        )
        # Candidate 2: the "split" the paper discusses in Section 4.1 —
        # two clauses each covering one inclusion of Z.
        cand2 = Program.of(
            clause(
                atom("p", X, Y, Z),
                [(x, X), (y, Y), (z, Z)],
                [member(x, Z), member(y, Z), member(z, X)],
            ),
            clause(
                atom("p", X, Y, Z),
                [(x, X), (y, Y), (z, Z)],
                [member(x, Z), member(y, Z), member(z, Y)],
            ),
        )
        # Candidate 3: enumerated small set constructors only.
        cand3 = Program.of(
            fact(atom("p", setvalue([]), setvalue([]), setvalue([]))),
            horn(
                atom("p", SetExpr((x,)), SetExpr((y,)), SetExpr((x, y))),
                atom("p", setvalue([]), setvalue([]), setvalue([])),
            ),
        )
        return [cand1, cand2, cand3]

    def test_all_candidates_fail(self):
        universe = Universe.build([a, b], max_set_size=2)
        for program in self.candidates():
            m = least_fixpoint(program, universe, max_rounds=50).interpretation
            assert not union_spec_holds(m, universe), (
                f"candidate unexpectedly defines union:\n{program.pretty()}"
            )

    def test_candidate2_is_union_of_conditions(self):
        """Section 4.1: splitting the disjunction per the Horn recipe gives
        ``X ⊆ Z ∧ Y ⊆ Z ∧ (Z ⊆ X ∨ Z ⊆ Y)`` — "which is not what we
        wanted": it misses genuine unions of incomparable sets."""
        universe = Universe.build([a, b], max_set_size=2)
        program = self.candidates()[1]
        m = least_fixpoint(program, universe, max_rounds=50).interpretation
        # {a} ∪ {b} = {a,b} is a true union instance, but neither disjunct
        # Z ⊆ X nor Z ⊆ Y holds, so the split program fails to derive it.
        assert not m.holds(
            atom("p", setvalue([a]), setvalue([b]), setvalue([a, b]))
        )
        # Comparable sets still work, so the program is not simply empty.
        assert m.holds(
            atom("p", setvalue([a]), setvalue([a, b]), setvalue([a, b]))
        )


class TestAlphaExtension:
    """The proof's core move: enlarging C by a fresh atom preserves
    derivability for quantifier-free single-predicate programs."""

    def alpha_closed(self, program: Program, universe: Universe):
        """lfp over the universe and over its α-extension."""
        m = least_fixpoint(program, universe, max_rounds=50).interpretation
        extended_sets = tuple(
            {s for s in universe.sets}
            | {setvalue(list(s) + [alpha]) for s in universe.sets}
        )
        extended = Universe(universe.atoms + (alpha,), extended_sets)
        m_ext = least_fixpoint(program, extended, max_rounds=50).interpretation
        return m, m_ext

    def test_quantifier_free_program_is_alpha_insensitive(self):
        """For the quantifier-free fragment the proof reduces to (case 1–5
        of the appendix), derivability of p(A,B,C) implies derivability of
        p(A,B,C∪{α}) whenever C occurs only as a variable.  Hence no such
        program can pin C = A ∪ B."""
        program = Program.of(
            # p(X, Y, Z) with Z unconstrained except via other p-atoms:
            horn(atom("p", X, Y, Z), atom("p", X, Y, Z)),  # vacuous loop
            fact(atom("p", setvalue([a]), setvalue([b]), setvalue([a, b]))),
            # A variable-Z rule as in the proof's case analysis:
            horn(atom("p", SetExpr((x,)), Y, Z), atom("p", SetExpr((x,)), Y, Z)),
        )
        universe = Universe.build([a, b], max_set_size=2)
        m, m_ext = self.alpha_closed(program, universe)
        assert m.holds(atom("p", setvalue([a]), setvalue([b]), setvalue([a, b])))
        # In the α-extended universe, the old derivations persist…
        assert m_ext.holds(
            atom("p", setvalue([a]), setvalue([b]), setvalue([a, b]))
        )

    def test_variable_third_argument_cannot_distinguish(self):
        """A rule whose head is p(t1, t2, Z) with Z a variable and whose
        body doesn't inspect Z derives p(…, C) for every C in the domain —
        including C ∪ {α}; so it over-approximates union."""
        program = Program.of(
            fact(atom("q", a)),
            horn(atom("p", X, Y, Z), atom("q", x)),
        )
        universe = Universe.build([a, b], max_set_size=2)
        m = least_fixpoint(program, universe, max_rounds=50).interpretation
        A, B = setvalue([a]), setvalue([b])
        good = setvalue([a, b])
        bad = setvalue([a])  # ≠ A ∪ B
        assert m.holds(atom("p", A, B, good))
        assert m.holds(atom("p", A, B, bad))  # over-derivation


class TestContrastWithAuxiliaries:
    def test_union_definable_with_auxiliaries(self):
        """Example 3 via Theorem 6: with auxiliary predicates union IS
        definable — the boundary Theorem 7 establishes."""
        from repro.core import Rule
        from repro.core.atoms import member as mem
        from repro.core.formulas import AtomF, ForallIn, conj, disj
        from repro.transform import compile_program

        body = conj(
            ForallIn(x, X, AtomF(mem(x, Z))),
            ForallIn(y, Y, AtomF(mem(y, Z))),
            ForallIn(z, Z, disj(AtomF(mem(z, X)), AtomF(mem(z, Y)))),
        )
        program = compile_program([Rule(atom("union", X, Y, Z), body)])
        universe = Universe.build([a, b], max_set_size=2)
        m = least_fixpoint(program, universe, max_rounds=50).interpretation
        for A in universe.sets:
            for B in universe.sets:
                want = setvalue(list(A) + list(B))
                for C in universe.sets:
                    assert m.holds(atom("union", A, B, C)) == (C == want)
