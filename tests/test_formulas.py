"""Tests for atoms, literals and body formulas, including the empty-set
semantics of restricted quantification (Definition 4, Section 4.1)."""

import pytest

from repro.core import (
    AndF,
    Atom,
    AtomF,
    ClauseError,
    ExistsIn,
    ForallIn,
    NotF,
    OrF,
    SortError,
    Subst,
    TRUE,
    atom,
    atomf,
    atoms_of,
    conj,
    const,
    disj,
    equals,
    evaluate,
    member,
    mkset,
    neg,
    pos,
    predicates_of,
    setvalue,
    var_a,
    var_s,
)

x, y = var_a("x"), var_a("y")
X, Y = var_s("X"), var_s("Y")
a, b = const("a"), const("b")


class TestAtoms:
    def test_special_detection(self):
        assert equals(a, b).is_special()
        assert member(a, mkset(a)).is_special()
        assert not atom("p", a).is_special()

    def test_equality_sort_check(self):
        with pytest.raises(SortError):
            equals(a, mkset(a))

    def test_member_sort_check(self):
        with pytest.raises(SortError):
            member(mkset(a), mkset(a))
        with pytest.raises(SortError):
            member(a, b)

    def test_substitute(self):
        theta = Subst({x: a})
        assert atom("p", x).substitute(theta) == atom("p", a)

    def test_literal_negate(self):
        l = pos(atom("p", a))
        assert l.negate() == neg(atom("p", a))
        assert l.negate().negate() == l

    def test_free_vars(self):
        assert atom("p", x, X).free_vars() == {x, X}


class TestFormulaStructure:
    def test_conj_flattens(self):
        f = conj(atomf(atom("p", a)), conj(atomf(atom("q", a)), TRUE))
        assert isinstance(f, AndF)
        assert len(f.parts) == 2

    def test_conj_empty_is_true(self):
        assert conj() is TRUE

    def test_conj_single(self):
        f = atomf(atom("p", a))
        assert conj(f) is f

    def test_disj_flattens(self):
        f = disj(atomf(atom("p", a)), disj(atomf(atom("q", a)), atomf(atom("r", a))))
        assert isinstance(f, OrF)
        assert len(f.parts) == 3

    def test_positive_classification(self):
        """Definition 12: positive formulas exclude negation."""
        inner = atomf(atom("p", x))
        assert ForallIn(x, X, inner).is_positive()
        assert ExistsIn(x, X, inner).is_positive()
        assert disj(inner, inner).is_positive()
        assert not NotF(inner).is_positive()
        assert not conj(inner, NotF(inner)).is_positive()

    def test_quantifier_sort_checks(self):
        with pytest.raises(ClauseError):
            ForallIn(X, Y, TRUE)  # bound var must be sort a
        with pytest.raises(SortError):
            ForallIn(x, a, TRUE)  # range must be set-sorted

    def test_free_vars_of_quantifier(self):
        f = ForallIn(x, X, atomf(atom("p", x, y)))
        assert f.free_vars() == {X, y}

    def test_substitute_avoids_capture(self):
        f = ForallIn(x, X, atomf(atom("p", x)))
        g = f.substitute(Subst({x: a}))
        # The bound x must not be replaced.
        assert g == f

    def test_substitute_range(self):
        f = ForallIn(x, X, atomf(atom("p", x)))
        g = f.substitute(Subst({X: setvalue([a])}))
        assert g.source == setvalue([a])

    def test_atoms_and_predicates_of(self):
        f = conj(
            atomf(atom("p", a)),
            ForallIn(x, X, disj(atomf(atom("q", x)), atomf(equals(x, a)))),
        )
        preds = predicates_of(f)
        assert preds == {"p", "q"}
        assert len(list(atoms_of(f))) == 3


class TestEvaluation:
    """Closed-formula model checking against an oracle."""

    def holds(self, *true_atoms):
        truth = set(true_atoms)
        return lambda g: g in truth

    def test_atom(self):
        p = atom("p", a)
        assert evaluate(atomf(p), self.holds(p))
        assert not evaluate(atomf(p), self.holds())

    def test_equality_structural(self):
        assert evaluate(atomf(equals(a, a)), self.holds())
        assert not evaluate(atomf(equals(a, b)), self.holds())
        assert evaluate(atomf(equals(mkset(a, b), mkset(b, a))), self.holds())

    def test_membership_structural(self):
        assert evaluate(atomf(member(a, mkset(a, b))), self.holds())
        assert not evaluate(atomf(member(a, mkset(b))), self.holds())

    def test_connectives(self):
        p, q = atom("p", a), atom("q", a)
        assert evaluate(conj(atomf(p), atomf(q)), self.holds(p, q))
        assert not evaluate(conj(atomf(p), atomf(q)), self.holds(p))
        assert evaluate(disj(atomf(p), atomf(q)), self.holds(q))
        assert evaluate(NotF(atomf(p)), self.holds())

    def test_forall_unfolds(self):
        body = atomf(atom("p", x))
        f = ForallIn(x, setvalue([a, b]), body)
        assert evaluate(f, self.holds(atom("p", a), atom("p", b)))
        assert not evaluate(f, self.holds(atom("p", a)))

    def test_forall_over_empty_set_is_true(self):
        """Definition 4's crux: (∀x ∈ ∅)φ ≡ true."""
        f = ForallIn(x, setvalue([]), atomf(atom("p", x)))
        assert evaluate(f, self.holds())

    def test_section41_inequivalence(self):
        """Section 4.1: (∀x∈X)(A ∧ B) is NOT equivalent to A ∧ (∀x∈X)B
        when X may be empty."""
        a_atom = atom("q", b)  # x-free conjunct, false in the model
        quantified_whole = ForallIn(
            x, setvalue([]), conj(atomf(a_atom), atomf(atom("p", x)))
        )
        hoisted = conj(
            atomf(a_atom), ForallIn(x, setvalue([]), atomf(atom("p", x)))
        )
        oracle = self.holds()  # nothing is true
        assert evaluate(quantified_whole, oracle) is True
        assert evaluate(hoisted, oracle) is False

    def test_exists_over_empty_set_is_false(self):
        f = ExistsIn(x, setvalue([]), TRUE)
        assert not evaluate(f, self.holds())

    def test_exists_finds_witness(self):
        f = ExistsIn(x, setvalue([a, b]), atomf(atom("p", x)))
        assert evaluate(f, self.holds(atom("p", b)))

    def test_open_formula_rejected(self):
        with pytest.raises(ClauseError):
            evaluate(atomf(atom("p", x)), self.holds())

    def test_quantifier_over_unbound_range_rejected(self):
        with pytest.raises(ClauseError):
            evaluate(ForallIn(x, X, TRUE), self.holds())
