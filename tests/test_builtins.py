"""Tests for evaluable predicates (arithmetic, neq, card, set operations)."""

import pytest

from repro.core import Subst, const, setvalue, var_a, var_s
from repro.core.errors import EvaluationError
from repro.engine.builtins import DEFAULT_BUILTINS, default_builtins
from repro.engine.setops import (
    MAX_DECOMP_WIDTH,
    set_builtins,
    with_set_builtins,
)

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")


def solve(name, *args, registry=None):
    registry = registry or with_set_builtins()
    b = registry[name]
    if not b.ready(args):
        return None
    return list(b.solve(args, Subst()))


class TestArithmetic:
    def test_plus_forward(self):
        (sigma,) = solve("plus", const(2), const(3), z)
        assert sigma[z] == const(5)

    def test_plus_backward_modes(self):
        (sigma,) = solve("plus", x, const(3), const(5))
        assert sigma[x] == const(2)
        (sigma,) = solve("plus", const(2), y, const(5))
        assert sigma[y] == const(3)

    def test_plus_check_mode(self):
        assert solve("plus", const(2), const(3), const(5)) != []
        assert solve("plus", const(2), const(3), const(6)) == []

    def test_plus_not_ready(self):
        assert solve("plus", x, y, const(5)) is None

    def test_plus_non_integer_fails(self):
        assert solve("plus", const("a"), const(3), z) == []

    def test_minus(self):
        (sigma,) = solve("minus", const(5), const(3), z)
        assert sigma[z] == const(2)
        (sigma,) = solve("minus", x, const(3), const(2))
        assert sigma[x] == const(5)

    def test_times(self):
        (sigma,) = solve("times", const(4), const(3), z)
        assert sigma[z] == const(12)

    def test_times_exact_division_only(self):
        (sigma,) = solve("times", const(4), y, const(12))
        assert sigma[y] == const(3)
        assert solve("times", const(5), y, const(12)) == []

    def test_comparisons(self):
        assert solve("lt", const(1), const(2))
        assert not solve("lt", const(2), const(2))
        assert solve("le", const(2), const(2))
        assert solve("gt", const(3), const(2))
        assert solve("ge", const(2), const(2))


class TestNeqAndCard:
    def test_neq_atoms(self):
        assert solve("neq", const("a"), const("b"))
        assert solve("neq", const("a"), const("a")) == []

    def test_neq_sets(self):
        assert solve("neq", setvalue([const(1)]), setvalue([const(2)]))
        assert solve("neq", setvalue([const(1)]), setvalue([const(1)])) == []

    def test_card(self):
        (sigma,) = solve("card", setvalue([const(1), const(2)]), z)
        assert sigma[z] == const(2)

    def test_card_check(self):
        assert solve("card", setvalue([]), const(0))
        assert solve("card", setvalue([]), const(1)) == []


class TestUnionBuiltin:
    def test_forward(self):
        s1, s2 = setvalue([const(1)]), setvalue([const(2)])
        (sigma,) = solve("union", s1, s2, Z)
        assert sigma[Z] == setvalue([const(1), const(2)])

    def test_decomposition_count(self):
        """union(X, Y, Z) with Z bound: 3^|Z| covering pairs."""
        target = setvalue([const(1), const(2)])
        sigmas = solve("union", X, Y, target)
        assert len(sigmas) == 9
        for s in sigmas:
            got = setvalue(list(s[X]) + list(s[Y]))
            assert got == target

    def test_xz_mode(self):
        sx = setvalue([const(1)])
        sz = setvalue([const(1), const(2)])
        sigmas = solve("union", sx, Y, sz)
        ys = {s[Y] for s in sigmas}
        assert setvalue([const(2)]) in ys
        assert setvalue([const(1), const(2)]) in ys
        for s in sigmas:
            assert setvalue(list(sx) + list(s[Y])) == sz

    def test_xz_mode_requires_subset(self):
        assert solve("union", setvalue([const(9)]), Y,
                     setvalue([const(1)])) == []


class TestSconsBuiltin:
    def test_forward(self):
        (sigma,) = solve("scons", const(1), setvalue([const(2)]), Z)
        assert sigma[Z] == setvalue([const(1), const(2)])

    def test_forward_idempotent(self):
        (sigma,) = solve("scons", const(1), setvalue([const(1)]), Z)
        assert sigma[Z] == setvalue([const(1)])

    def test_decompose(self):
        target = setvalue([const(1), const(2)])
        sigmas = solve("scons", x, Y, target)
        for s in sigmas:
            assert setvalue(list(s[Y]) + [s[x]]) == target
        xs = {s[x] for s in sigmas}
        assert xs == {const(1), const(2)}

    def test_decompose_bound_elem(self):
        target = setvalue([const(1), const(2)])
        sigmas = solve("scons", const(1), Y, target)
        ys = {s[Y] for s in sigmas}
        assert setvalue([const(2)]) in ys and target in ys

    def test_elem_not_in_target(self):
        assert solve("scons", const(9), Y, setvalue([const(1)])) == []


class TestChooseMin:
    def test_deterministic(self):
        target = setvalue([const(3), const(1), const(2)])
        (sigma,) = solve("choose_min", x, Y, target)
        assert sigma[x] == const(1)
        assert sigma[Y] == setvalue([const(2), const(3)])

    def test_empty_fails(self):
        assert solve("choose_min", x, Y, setvalue([])) == []


class TestSetOps:
    def test_setdiff(self):
        (sigma,) = solve(
            "setdiff", setvalue([const(1), const(2)]), setvalue([const(2)]), Z
        )
        assert sigma[Z] == setvalue([const(1)])

    def test_intersect(self):
        (sigma,) = solve(
            "intersect", setvalue([const(1), const(2)]),
            setvalue([const(2), const(3)]), Z,
        )
        assert sigma[Z] == setvalue([const(2)])

    def test_subset_enum(self):
        sigmas = solve("subset_enum", X, setvalue([const(1), const(2)]))
        assert len(sigmas) == 4

    def test_decomp_width_guard(self):
        big = setvalue([const(i) for i in range(MAX_DECOMP_WIDTH + 1)])
        with pytest.raises(EvaluationError):
            solve("union", X, Y, big)


class TestRegistries:
    def test_default_registry_contents(self):
        names = set(default_builtins())
        assert {"plus", "minus", "times", "lt", "le", "gt", "ge",
                "neq", "card"} <= names
        assert "union" not in names

    def test_set_registry_contents(self):
        assert {"union", "scons", "choose_min", "setdiff", "intersect",
                "subset_enum"} == set(set_builtins())

    def test_with_set_builtins_is_superset(self):
        assert set(DEFAULT_BUILTINS) < set(with_set_builtins())
