"""Theorem 6: positive-formula rules compile to equivalent LPS programs.

Equivalence is in the theorem's sense: for formulas over the original
language L (not mentioning the fresh auxiliaries), the compiled program has
the same consequences.  We check it by computing least models over finite
universes and comparing the extensions of the original predicates, on the
paper's union example (Example 9) and on randomly generated positive
formulas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    LPSClause,
    Program,
    Rule,
    atom,
    clause,
    const,
    fact,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.core.formulas import (
    AtomF,
    ExistsIn,
    ForallIn,
    Formula,
    NotF,
    conj,
    disj,
    evaluate,
)
from repro.semantics import Universe, least_fixpoint
from repro.transform import compile_program, compile_rule

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
a, b = const("a"), const("b")

UNIVERSE = Universe.build([a, b], max_set_size=2)


def union_rule() -> Rule:
    body = conj(
        ForallIn(x, X, AtomF(member(x, Z))),
        ForallIn(y, Y, AtomF(member(y, Z))),
        ForallIn(z, Z, disj(AtomF(member(z, X)), AtomF(member(z, Y)))),
    )
    return Rule(atom("un", X, Y, Z), body)


class TestStructure:
    def test_output_is_pure_lps(self):
        for faithful in (False, True):
            program = compile_program([union_rule()], faithful=faithful)
            for c in program.clauses:
                assert isinstance(c, LPSClause)
                c.check_core()  # no negation in the positive fragment

    def test_faithful_blowup_matches_example9(self):
        """Example 9: the general construction yields an 11-clause program;
        our faithful mode (one auxiliary per connective, with special atoms
        kept atomic) gives 10 clauses — same order of blow-up — while the
        simplified mode matches the paper's hand-written 6-clause version
        (union + subset twice + the covering auxiliary)."""
        faithful = compile_program([union_rule()], faithful=True)
        simplified = compile_program([union_rule()], faithful=False)
        assert len(faithful.clauses) == 10
        assert len(simplified.clauses) == 6
        assert len(simplified.clauses) < len(faithful.clauses)

    def test_atomic_body_unchanged(self):
        rule = Rule(atom("p", x), AtomF(atom("q", x)))
        (c,) = compile_rule(rule)
        assert c.head == atom("p", x)
        assert [l.atom for l in c.body] == [atom("q", x)]

    def test_fresh_names_do_not_collide(self):
        """A source predicate that looks like a generated name must not be
        reused for an auxiliary."""
        rule = Rule(
            atom("n_or_1", x),
            disj(AtomF(atom("q", x)), AtomF(atom("r", x))),
        )
        program = compile_program([rule])
        heads = [c.head.pred for c in program.clauses]
        # Exactly one clause defines the original predicate; the auxiliary
        # got a different fresh name despite the 'n_or_*' pattern.
        assert heads.count("n_or_1") == 1
        assert len(set(heads)) == len(set(heads) | {"n_or_1"})


def extension(program: Program, pred: str, arity_sorts) -> frozenset:
    m = least_fixpoint(program, UNIVERSE, max_rounds=80).interpretation
    out = set()
    import itertools

    carriers = [UNIVERSE.carrier(s) for s in arity_sorts]
    for combo in itertools.product(*carriers):
        if m.holds(Atom(pred, tuple(combo))):
            out.add(tuple(combo))
    return frozenset(out)


class TestUnionSemantics:
    @pytest.mark.parametrize("faithful", [False, True])
    def test_compiled_union_is_union(self, faithful):
        program = compile_program([union_rule()], faithful=faithful)
        ext = extension(program, "un", ("s", "s", "s"))
        for A in UNIVERSE.sets:
            for B in UNIVERSE.sets:
                want = setvalue(list(A) + list(B))
                for C in UNIVERSE.sets:
                    assert ((A, B, C) in ext) == (C == want)

    def test_faithful_and_simplified_agree(self):
        e1 = extension(
            compile_program([union_rule()], faithful=True), "un", ("s",) * 3
        )
        e2 = extension(
            compile_program([union_rule()], faithful=False), "un", ("s",) * 3
        )
        assert e1 == e2


class TestConnectives:
    def run(self, body: Formula, facts=(), faithful=False):
        rule = Rule(atom("h", *sorted(body.free_vars(),
                                      key=lambda v: (v.sort, v.name))), body)
        items = [rule] + [fact(f) for f in facts]
        program = compile_program(items, faithful=faithful)
        return least_fixpoint(program, UNIVERSE, max_rounds=80).interpretation

    @pytest.mark.parametrize("faithful", [False, True])
    def test_disjunction(self, faithful):
        body = disj(AtomF(atom("q", x)), AtomF(atom("r", x)))
        m = self.run(body, [atom("q", a), atom("r", b)], faithful)
        assert m.holds(atom("h", a))
        assert m.holds(atom("h", b))

    @pytest.mark.parametrize("faithful", [False, True])
    def test_exists(self, faithful):
        body = ExistsIn(x, X, AtomF(atom("q", x)))
        m = self.run(body, [atom("q", a)], faithful)
        assert m.holds(atom("h", setvalue([a])))
        assert m.holds(atom("h", setvalue([a, b])))
        assert not m.holds(atom("h", setvalue([b])))
        assert not m.holds(atom("h", setvalue([])))

    @pytest.mark.parametrize("faithful", [False, True])
    def test_nested_forall_or(self, faithful):
        body = ForallIn(
            x, X, disj(AtomF(atom("q", x)), AtomF(atom("r", x)))
        )
        m = self.run(body, [atom("q", a), atom("r", b)], faithful)
        assert m.holds(atom("h", setvalue([a, b])))
        assert m.holds(atom("h", setvalue([])))

    def test_negative_literal_extension(self):
        """Beyond the paper: ¬atom leaves compile to negative literals."""
        body = conj(AtomF(atom("q", x)), NotF(AtomF(atom("r", x))))
        rule = Rule(atom("h", x), body)
        program = compile_program(
            [rule, fact(atom("q", a)), fact(atom("q", b)), fact(atom("r", b))]
        )
        from repro.engine import solve

        m = solve(program)
        assert m.holds(atom("h", a))
        assert not m.holds(atom("h", b))


# ---------------------------------------------------------------------------
# Property-based Theorem 6 check: random positive bodies, compiled vs direct
# formula evaluation against the same least model's base predicates.
# ---------------------------------------------------------------------------

atoms_st = st.sampled_from([
    AtomF(atom("q", x)),
    AtomF(atom("r", x)),
    AtomF(member(x, X)),
])


@st.composite
def positive_bodies(draw, depth=2):
    if depth == 0:
        return draw(atoms_st)
    kind = draw(st.sampled_from(["atom", "and", "or", "forall", "exists"]))
    if kind == "atom":
        return draw(atoms_st)
    if kind in ("and", "or"):
        l = draw(positive_bodies(depth=depth - 1))
        r = draw(positive_bodies(depth=depth - 1))
        return conj(l, r) if kind == "and" else disj(l, r)
    inner = draw(positive_bodies(depth=depth - 1))
    if kind == "forall":
        return ForallIn(x, X, inner)
    return ExistsIn(x, X, inner)


@settings(max_examples=25, deadline=None)
@given(body=positive_bodies())
def test_theorem6_equivalence_random(body):
    """For random positive bodies B over q/r/∈: the compiled program's `h`
    extension equals the direct truth of B in the same base model."""
    free = sorted(body.free_vars(), key=lambda v: (v.sort, v.name))
    rule = Rule(atom("h", *free), body)
    base_facts = [atom("q", a), atom("r", b)]
    program = compile_program([rule] + [fact(f) for f in base_facts])
    m = least_fixpoint(program, UNIVERSE, max_rounds=100).interpretation

    import itertools

    from repro.core import Subst

    carriers = [UNIVERSE.carrier(v.sort) for v in free]
    base = set(base_facts)
    for combo in itertools.product(*carriers):
        theta = Subst(dict(zip(free, combo)))
        direct = evaluate(body.substitute(theta), lambda at: at in base)
        compiled = m.holds(atom("h", *combo))
        assert direct == compiled, (
            f"disagreement at {theta} for body {body}"
        )
