"""Pickle round-trips for interned terms and atoms.

Interned terms cache a process-local dense id in their ``_tid`` slot
(``repro.core.terms.TermDict``).  Those ids are meaningless in any other
process: a pickled payload that transported one could silently violate
the ``id equality <=> term equality`` invariant the columnar executor is
built on.  The ``__reduce__`` implementations therefore rebuild every
term and atom through its constructor — unpickling re-interns and the
local ``TERM_DICT`` re-derives ids lazily.  These tests pin that down,
including a cross-process round trip where the sending process's dense
ids are guaranteed to disagree with the receiver's.
"""

import copy
import os
import pickle
import subprocess
import sys

from repro.core.atoms import Atom
from repro.core.terms import (
    EMPTY_SET,
    App,
    SetExpr,
    SetValue,
    TERM_DICT,
    const,
    term_id,
    var_a,
    var_s,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestInternedRoundTrip:
    def test_var_reinterns(self):
        v = var_a("X")
        assert _roundtrip(v) is v
        assert _roundtrip(var_s("S")) is var_s("S")

    def test_const_reinterns(self):
        assert _roundtrip(const("a")) is const("a")
        assert _roundtrip(const(3)) is const(3)
        # bool/int interning is keyed by value class, not equality
        assert _roundtrip(const(True)) is const(True)
        assert _roundtrip(const(True)) is not const(1)

    def test_set_value_reinterns(self):
        s = SetValue(frozenset({const("a"), const("b")}))
        assert _roundtrip(s) is s
        assert _roundtrip(EMPTY_SET) is EMPTY_SET

    def test_nested_set_value_reinterns(self):
        inner = SetValue(frozenset({const(1)}))
        outer = SetValue(frozenset({inner, const(2)}))
        assert _roundtrip(outer) is outer

    def test_app_and_set_expr_rebuild_fresh_caches(self):
        t = App("f", (const("a"), var_a("X")))
        u = _roundtrip(t)
        assert u == t and hash(u) == hash(t)
        assert u._tid == -1  # never inherits a serialized id slot
        e = SetExpr((var_a("X"), const("b")))
        f = _roundtrip(e)
        assert f == e and hash(f) == hash(e)
        assert f._tid == -1

    def test_atom_rebuilds_and_args_reintern(self):
        a = Atom("p", (const("a"), SetValue(frozenset({const("b")}))))
        b = _roundtrip(a)
        assert b == a and hash(b) == hash(a)
        assert b.args[0] is const("a")
        assert b.args[1] is a.args[1]

    def test_deepcopy_preserves_interning(self):
        t = const("deep")
        assert copy.deepcopy(t) is t
        a = Atom("p", (t, var_a("X")))
        b = copy.deepcopy(a)
        assert b == a and b.args[0] is t and b.args[1] is var_a("X")


class TestCrossProcessIds:
    def test_foreign_tid_never_enters_local_term_dict(self):
        """A term pickled in a process with *different* dense-id
        assignments must come back as the local interned object with the
        local id — the foreign ``_tid`` must not clobber it."""
        t = const("xproc-shared")
        local_tid = term_id(t)
        burn = len(TERM_DICT.terms) + 64
        child = (
            "import pickle, sys\n"
            "from repro.core.terms import const, term_id\n"
            "from repro.core.atoms import Atom\n"
            f"for i in range({burn}):\n"
            "    term_id(const('xproc-burn-%d' % i))\n"
            "t = const('xproc-shared')\n"
            "atom = Atom('p', (t, const('xproc-other')))\n"
            "sys.stdout.buffer.write(pickle.dumps((term_id(t), t, atom)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, env=env, check=True,
        )
        foreign_tid, u, atom = pickle.loads(out.stdout)
        assert foreign_tid != local_tid  # the hazard is real in this run
        assert u is t
        assert u._tid == local_tid
        assert TERM_DICT.terms[term_id(u)] is u
        assert atom == Atom("p", (t, const("xproc-other")))
        assert atom.args[0] is t
        assert TERM_DICT.terms[term_id(atom.args[1])] is atom.args[1]
