"""Cross-validation: the optimised engine against the brute-force ``T_P``.

The engine (joins, indexes, semi-naive, vacuous-branch handling) and the
reference operator (literal Lemma-4 grounding over an explicit finite
universe) are independent implementations of the same semantics.  On random
programs whose active domain we pin to a fixed universe, they must agree
exactly.  This is the strongest single guard against engine bugs.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    Program,
    atom,
    clause,
    const,
    equals,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Evaluator
from repro.engine.builtins import default_builtins
from repro.engine.evaluation import EvalOptions
from repro.semantics import Universe, least_fixpoint

x, y = var_a("x"), var_a("y")
X, Y = var_s("X"), var_s("Y")
a, b = const("a"), const("b")

#: All sets over {a, b}; facts below mention every one of them, so the
#: engine's active domain equals this fixed universe.
ALL_SETS = [
    setvalue([]), setvalue([a]), setvalue([b]), setvalue([a, b]),
]
UNIVERSE = Universe((a, b), tuple(ALL_SETS))

#: Inert facts pinning the active domain to the universe.
DOMAIN_FACTS = [fact(atom("dom", s)) for s in ALL_SETS] + [
    fact(atom("doma", a)), fact(atom("doma", b)),
]


def agree(program: Program):
    program = program.with_clauses(DOMAIN_FACTS)
    ref = least_fixpoint(program, UNIVERSE, max_rounds=80).interpretation
    for semi in (True, False):
        engine = Evaluator(
            program, builtins=default_builtins(),
            options=EvalOptions(semi_naive=semi),
        ).run()
        assert engine.interpretation == ref, (
            f"engine (semi_naive={semi}) disagrees with reference on:\n"
            f"{program.pretty()}\n"
            f"engine-only: {sorted(map(str, set(engine.interpretation.atoms()) - set(ref.atoms())))}\n"
            f"ref-only: {sorted(map(str, set(ref.atoms()) - set(engine.interpretation.atoms())))}"
        )


class TestHandPicked:
    def test_subset(self):
        agree(Program.of(
            clause(atom("subs", X, Y), [(x, X)], [member(x, Y)]),
        ))

    def test_disj(self):
        agree(Program.of(
            clause(atom("disj", X, Y), [(x, X), (y, Y)],
                   [pos(equals(x, x))]),  # degenerate: always true
        ))

    def test_vacuous_with_side_conjunct(self):
        agree(Program.of(
            fact(atom("p", a)),
            clause(atom("h", X, y), [(x, X)], [atom("qq", y), atom("p", x)]),
        ))

    def test_recursive_membership(self):
        agree(Program.of(
            fact(atom("seed", a)),
            horn(atom("reach", x), atom("seed", x)),
            horn(atom("reach", y), atom("reach", x), atom("dom", X),
                 member(x, X), member(y, X)),
        ))

    def test_equality_generation(self):
        agree(Program.of(
            fact(atom("p", a)),
            horn(atom("q", X), atom("dom", X), equals(X, setvalue([a]))),
        ))

    def test_set_constructor_head(self):
        from repro.core import SetExpr

        agree(Program.of(
            fact(atom("p", a)),
            fact(atom("p", b)),
            horn(Atom("mk", (SetExpr((x, y)),)), atom("p", x), atom("p", y)),
        ))


# -- random programs ----------------------------------------------------------

head_preds = st.sampled_from(["h1", "h2"])
body_preds = st.sampled_from(["h1", "h2", "dom", "doma", "p0"])
a_terms = st.sampled_from([a, b, x, y])
s_terms = st.sampled_from(ALL_SETS + [X, Y])


@st.composite
def random_literal(draw):
    kind = draw(st.sampled_from(["rel_a", "rel_s", "member", "equals"]))
    if kind == "rel_a":
        p = draw(st.sampled_from(["doma", "p0", "h1"]))
        return pos(atom(p, draw(a_terms)))
    if kind == "rel_s":
        return pos(atom("dom", draw(s_terms)))
    if kind == "member":
        return pos(member(draw(a_terms), draw(s_terms)))
    lhs = draw(a_terms)
    rhs = draw(a_terms)
    return pos(equals(lhs, rhs))


@st.composite
def random_clause(draw):
    head_kind = draw(st.sampled_from(["a", "s"]))
    if head_kind == "a":
        head = atom(draw(head_preds), draw(st.sampled_from([a, b, x])))
    else:
        head = atom(draw(head_preds), draw(st.sampled_from(ALL_SETS + [X])))
    body = [draw(random_literal()) for _ in range(draw(st.integers(1, 3)))]
    if draw(st.booleans()):
        try:
            return clause(head, [(y, draw(st.sampled_from([X] + ALL_SETS)))],
                          body)
        except Exception:
            pass
    return horn(head, *body)


@st.composite
def random_programs(draw):
    clauses = [fact(atom("p0", a))]
    # Keep head predicates sort-consistent: h1 gets 'a' args, h2 gets 's'.
    for _ in range(draw(st.integers(1, 3))):
        c = draw(random_clause())
        clauses.append(c)
    # Normalise arities/sorts: rebuild heads so h1:a, h2:s.
    fixed = []
    for c in clauses:
        if c.head.pred == "h1" and c.head.args[0].sort == "s":
            continue
        if c.head.pred == "h2" and c.head.args[0].sort == "a":
            continue
        fixed.append(c)
    return Program.of(*fixed)


@settings(max_examples=40, deadline=None)
@given(p=random_programs())
def test_engine_agrees_with_reference(p):
    try:
        p.predicates()
    except Exception:
        return  # arity clash in generated program: skip
    agree(p)
