"""Theorem 8: set construction is impossible with minimal-model semantics.

The proof's probe is fully mechanisable: take ``P1 = {A(c1)}`` and
``P2 = {A(c1), A(c2)}``.  If some fixed ``P*`` (not mentioning B in P,
not defining A) made ``B(U)`` hold exactly for ``U = {u | A(u)}``, then

* ``M_{P1 ∪ P*}``  ⊨ B({c1})       (spec for P1), but
* every model of P2∪P* is a model of P1∪P*, so by minimality
  ``M_{P1∪P*} ⊆ M_{P2∪P*}`` — forcing  ``M_{P2∪P*} ⊨ B({c1})``,
  contradicting the spec for P2 (which demands B({c1,c2}) only).

We verify the monotonicity lemma (P1 ⊆ P2 ⇒ M_{P1} ⊆ M_{P2}) on random
programs, run the probe against candidate B-definitions to watch each fail,
and then confirm the Section 4.2 escape hatch: with stratified negation the
predicate IS definable (see also test_setof.py)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.semantics import Universe, least_fixpoint

x = var_a("x")
X = var_s("X")
c1, c2 = const("c1"), const("c2")

UNIVERSE = Universe.build([c1, c2], max_set_size=2)


def lfp(program: Program):
    return least_fixpoint(program, UNIVERSE, max_rounds=60).interpretation


class TestMonotonicityLemma:
    """The engine of the proof: growing the program grows the least model."""

    def test_concrete(self):
        p_star = Program.of(clause(atom("b", X), [(x, X)], [atom("a", x)]))
        p1 = Program.of(fact(atom("a", c1))) + p_star
        p2 = Program.of(fact(atom("a", c1)), fact(atom("a", c2))) + p_star
        m1, m2 = lfp(p1), lfp(p2)
        assert set(m1.atoms()) <= set(m2.atoms())

    @settings(max_examples=25, deadline=None)
    @given(extra=st.lists(
        st.sampled_from([fact(atom("a", c1)), fact(atom("a", c2)),
                         fact(atom("q", c1)), fact(atom("q", c2))]),
        max_size=3,
    ))
    def test_random(self, extra):
        base = Program.of(
            fact(atom("a", c1)),
            horn(atom("q", x), atom("a", x)),
        )
        bigger = base.with_clauses(extra)
        assert set(lfp(base).atoms()) <= set(lfp(bigger).atoms())


class TestTheProbe:
    """Run the proof's P1/P2 probe against candidate definitions of B."""

    def candidates(self) -> list[Program]:
        # Candidate 1: the paper's own (insufficient) attempt —
        # B(X) :- (∀x∈X)A(x).  Holds for all SUBSETS of {x | A(x)}.
        c1_prog = Program.of(
            clause(atom("b", X), [(x, X)], [atom("a", x)]),
        )
        # Candidate 2: require non-emptiness too.
        c2_prog = Program.of(
            clause(
                atom("b", X), [(x, X)],
                [atom("a", x)],
            ),
        )
        c2_prog = Program.of(
            horn(atom("nonempty", X), member(var_a("w"), X)),
            clause(atom("all_a", X), [(x, X)], [atom("a", x)]),
            horn(atom("b", X), atom("all_a", X), atom("nonempty", X)),
        )
        return [c1_prog, c2_prog]

    def spec_holds(self, m, witness_set) -> bool:
        """B(U) iff U == witness_set, over all sets in the universe."""
        for U in UNIVERSE.sets:
            if m.holds(atom("b", U)) != (U == witness_set):
                return False
        return True

    def test_candidates_fail_the_probe(self):
        for p_star in self.candidates():
            p1 = Program.of(fact(atom("a", c1))) + p_star
            p2 = Program.of(fact(atom("a", c1)), fact(atom("a", c2))) + p_star
            ok1 = self.spec_holds(lfp(p1), setvalue([c1]))
            ok2 = self.spec_holds(lfp(p2), setvalue([c1, c2]))
            assert not (ok1 and ok2), (
                "a minimal-model program defined exact set construction, "
                "contradicting Theorem 8:\n" + p_star.pretty()
            )

    def test_proof_argument_directly(self):
        """If B({c1}) holds in M_{P1∪P*}, monotonicity forces it in
        M_{P2∪P*}, where the spec forbids it."""
        p_star = self.candidates()[0]
        p1 = Program.of(fact(atom("a", c1))) + p_star
        p2 = Program.of(fact(atom("a", c1)), fact(atom("a", c2))) + p_star
        m1, m2 = lfp(p1), lfp(p2)
        if m1.holds(atom("b", setvalue([c1]))):
            # the contradiction the proof derives:
            assert m2.holds(atom("b", setvalue([c1])))
            assert not self.spec_holds(m2, setvalue([c1, c2]))

    def test_subset_behaviour_of_naive_b(self):
        """Section 4.2's observation: B(X) :- (∀x∈X)A(x) holds for ALL
        subsets of the witness set, not just the witness set."""
        p_star = self.candidates()[0]
        p2 = Program.of(fact(atom("a", c1)), fact(atom("a", c2))) + p_star
        m = lfp(p2)
        assert m.holds(atom("b", setvalue([])))
        assert m.holds(atom("b", setvalue([c1])))
        assert m.holds(atom("b", setvalue([c2])))
        assert m.holds(atom("b", setvalue([c1, c2])))
