"""Tests for the top-down SLD prover (Section 3.2's procedural semantics)."""

import pytest

from repro.core import (
    Program,
    Subst,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.engine import Database, TopDownProver, solve

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y = var_s("X"), var_s("Y")
a, b, c = const("a"), const("b"), const("c")


def closure_program():
    return Program.of(
        fact(atom("e", a, b)),
        fact(atom("e", b, c)),
        horn(atom("t", x, y), atom("e", x, y)),
        horn(atom("t", x, z), atom("e", x, y), atom("t", y, z)),
    )


class TestBasicProof:
    def test_ground_goals(self):
        td = TopDownProver(closure_program())
        assert td.holds(atom("t", a, c))
        assert not td.holds(atom("t", c, a))

    def test_answer_enumeration(self):
        td = TopDownProver(closure_program())
        answers = {
            (s.apply(x), s.apply(y)) for s in td.prove(atom("t", x, y))
        }
        assert answers == {(a, b), (b, c), (a, c)}

    def test_answers_restricted_to_goal_vars(self):
        td = TopDownProver(closure_program())
        for s in td.prove(atom("t", x, y)):
            assert set(s) <= {x, y}

    def test_database_facts(self):
        db = Database()
        db.add("e", "a", "b")
        td = TopDownProver(Program.of(horn(atom("t", x, y), atom("e", x, y))),
                           database=db)
        assert td.holds(atom("t", a, b))

    def test_loop_check_terminates(self):
        p = Program.of(
            fact(atom("p", a)),
            horn(atom("p", x), atom("p", x)),  # left recursion
        )
        td = TopDownProver(p)
        assert td.holds(atom("p", a))
        assert not td.holds(atom("p", b))

    def test_limit(self):
        td = TopDownProver(closure_program())
        assert len(td.ask(atom("t", x, y), limit=2)) == 2


class TestQuantifiedGoals:
    def subset_program(self):
        return Program.of(
            clause(atom("subset", X, Y), [(x, X)], [member(x, Y)]),
        )

    def test_ground_quantified_goal(self):
        td = TopDownProver(self.subset_program())
        assert td.holds(atom("subset", setvalue([a]), setvalue([a, b])))
        assert not td.holds(atom("subset", setvalue([a, b]), setvalue([a])))

    def test_empty_set_vacuous(self):
        td = TopDownProver(self.subset_program())
        assert td.holds(atom("subset", setvalue([]), setvalue([])))
        assert td.holds(atom("subset", setvalue([]), setvalue([a])))

    def test_delayed_quantifier_fails_gracefully(self):
        """A goal whose quantifier range never becomes ground floats
        forever; the prover answers 'no proof' rather than diverging —
        the paper's 'no longer a practical decision procedure'."""
        td = TopDownProver(self.subset_program())
        assert td.ask(atom("subset", X, Y)) == []

    def test_disj_example1(self):
        p = Program.of(
            clause(atom("disj", X, Y), [(x, X), (y, Y)],
                   [atom("neq", x, y)]),
        )
        td = TopDownProver(p)
        assert td.holds(atom("disj", setvalue([a]), setvalue([b])))
        assert not td.holds(atom("disj", setvalue([a]), setvalue([a, b])))
        assert td.holds(atom("disj", setvalue([]), setvalue([a])))


class TestSetUnificationInHeads:
    def test_set_constructor_head(self):
        from repro.core import SetExpr, Atom

        p = Program.of(
            horn(Atom("sum1", (SetExpr((x,)), x))),
        )
        td = TopDownProver(p)
        assert td.holds(atom("sum1", setvalue([a]), a))
        # Non-unitary matching: {x} against {a} binds x=a.
        answers = td.ask(atom("sum1", setvalue([b]), y))
        assert [s.apply(y) for s in answers] == [b]

    def test_sum_via_scons_builtin(self):
        from repro.engine.setops import with_set_builtins

        p = Program.of(
            fact(atom("sum", setvalue([]), const(0))),
            horn(
                atom("sum", X, z),
                atom("choose_min", x, Y, X),
                atom("sum", Y, y),
                atom("plus", y, x, z),
            ),
        )
        td = TopDownProver(p, builtins=with_set_builtins())
        target = setvalue([const(3), const(5), const(9)])
        answers = td.ask(atom("sum", target, z))
        assert {s.apply(z) for s in answers} == {const(17)}


class TestAgreementWithBottomUp:
    def test_ground_query_agreement(self):
        p = closure_program()
        m = solve(p)
        td = TopDownProver(p)
        for u in (a, b, c):
            for v in (a, b, c):
                goal = atom("t", u, v)
                assert m.holds(goal) == td.holds(goal)

    def test_negation_as_failure(self):
        p = Program.of(
            fact(atom("q", a)),
            fact(atom("node", a)),
            fact(atom("node", b)),
            horn(atom("p", x), pos(atom("node", x)), neg(atom("q", x))),
        )
        td = TopDownProver(p)
        assert td.holds(atom("p", b))
        assert not td.holds(atom("p", a))
        m = solve(p)
        assert m.holds(atom("p", b)) and not m.holds(atom("p", a))
