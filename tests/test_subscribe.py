"""Live subscription queries: exact per-commit diffs, proven by replay.

The contract (DESIGN.md, "Live subscription queries"): for every standing
query, the answer set returned at subscription time plus the accumulated
pushed diffs is **bit-identical to a from-scratch evaluation at every
version** — diffs are exact (no echoed unchanged rows, no misses), gap
free (every committed version after the baseline is covered exactly
once), and computed from the commit's per-predicate delta, not by
re-running the query.  The property must hold across the
``columnar × compile_plans`` engine grid, for delta-capable goals and for
goals the delta path cannot serve (negation), through unsubscribes
mid-churn, batched writes, session teardown, and on followers applying a
replicated stream.

This module also pins the PR's two concurrency bugfixes: ``:sync`` parks
on the model's version condition (no polling) and runs on a dedicated
waiter pool so waiting clients cannot starve queries, and a subscriber
that never drains its diffs is dropped instead of buffering without
bound.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database
from repro.engine.evaluation import EvalOptions
from repro.server import E_NOT_YET, LineClient, QueryService, run_in_thread
from repro.server.subscriptions import FRAME_DIFF, FRAME_DROPPED, REASON_SLOW
from repro.workloads import subscriber_plan

#: The grid the acceptance criteria name for the equivalence property.
SUB_MODES = [
    {"columnar": c, "compile_plans": p}
    for c in (True, False)
    for p in (True, False)
]


def mode_id(mode):
    return "-".join(f"{k.split('_')[0]}{int(v)}" for k, v in mode.items())


TC = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

#: Closure plus a negation stratum: ``dead`` is *not* delta-capable, so
#: the suite exercises the evaluate-and-diff fallback alongside the
#: delta-plan path in the same run.
PROGRAM = TC + """
n(v0). n(v1). n(v2).
dead(X) :- n(X), not t(X, X).
"""

#: Goal shapes: half-bound, open dump, negation, conjunctive, ground.
GOALS = [
    "t(v0, X)",
    "t(X, Y)",
    "dead(X)",
    "t(X, Y), e(Y, Z)",
    "t(v0, v1)",
]

FACTS = [
    ("e", f"v{a}", f"v{b}") for a in range(4) for b in range(4) if a != b
]


def scratch_rows(mode, facts, goal, program=PROGRAM):
    """From-scratch oracle: a brand-new service over the same facts."""
    db = Database()
    for spec in sorted(facts):
        db.add(*spec)
    with QueryService(
        program, database=db, options=EvalOptions(**mode)
    ) as svc:
        result = svc.open_session().query(goal)
        return {tuple(str(t) for t in row) for row in result.rows}


def drain(session, subs):
    """Apply a session's queued diff frames to the per-sub replay state.

    Checks the frame invariants along the way: versions strictly
    increase per subscription, a diff is never empty, adds are new rows
    and dels are live rows.
    """
    for frame in session.take_push_frames():
        assert frame["kind"] == FRAME_DIFF
        entry = subs[frame["sub"]]
        adds = {tuple(r) for r in frame["adds"]}
        dels = {tuple(r) for r in frame["dels"]}
        assert frame["version"] > entry["version"]
        assert frame["vars"] == entry["vars"]
        assert adds or dels
        assert not adds & entry["state"]
        assert dels <= entry["state"]
        entry["version"] = frame["version"]
        entry["state"] = (entry["state"] - dels) | adds


def register(session, subs, goal):
    response = session.subscribe(goal)
    assert response.ok, response.error
    subs[response.data["sub"]] = {
        "goal": goal,
        "vars": response.data["vars"],
        "state": {tuple(r) for r in response.data["rows"]},
        "version": response.version,
    }
    return response.data["sub"]


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------


class TestDiffEquivalence:
    @pytest.mark.parametrize("mode", SUB_MODES, ids=mode_id)
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_initial_rows_plus_diffs_replay_scratch_evaluation(
        self, mode, data
    ):
        """baseline ∪ accumulated diffs ≡ from-scratch, at every version."""
        goal_picks = data.draw(st.lists(
            st.sampled_from(range(len(GOALS))),
            min_size=1, max_size=3, unique=True,
        ))
        ops = data.draw(st.lists(
            st.sampled_from(range(len(FACTS))), min_size=1, max_size=8,
        ))
        svc = QueryService(PROGRAM, options=EvalOptions(**mode))
        try:
            session = svc.open_session()
            subs: dict[int, dict] = {}
            for gi in goal_picks:
                register(session, subs, GOALS[gi])
            live: set[tuple] = set()
            for fi in ops:
                fact = FACTS[fi]
                if fact in live:
                    live.discard(fact)
                    svc.apply_delta(dels=[fact])
                else:
                    live.add(fact)
                    svc.apply_delta(adds=[fact])
                assert svc.subscriptions.wait_caught_up(svc.model.version)
                drain(session, subs)
                for entry in subs.values():
                    assert entry["state"] == scratch_rows(
                        mode, live, entry["goal"]
                    ), (entry["goal"], sorted(live))
        finally:
            svc.shutdown()

    def test_subscriber_plan_replay(self):
        """The workload generator end to end: staggered subscribes and
        unsubscribes riding a churn stream over the full program mix."""
        plan = subscriber_plan(n_batches=10, n_subscribers=5, seed=3)
        db = Database()
        for spec in plan.initial_facts:
            db.add(*spec)
        svc = QueryService(plan.program, database=db)
        try:
            session = svc.open_session()
            subs: dict[int, dict] = {}
            by_goal: dict[int, int] = {}
            for i, batch in enumerate(plan.batches):
                for k, goal in enumerate(plan.goals):
                    if plan.subscribe_at[k] == i:
                        by_goal[k] = register(session, subs, goal)
                    if plan.unsubscribe_at[k] == i and k in by_goal:
                        svc.subscriptions.wait_caught_up(svc.model.version)
                        drain(session, subs)
                        assert session.unsubscribe(by_goal.pop(k)).ok
                svc.apply_delta(adds=batch.adds, dels=batch.dels)
            assert svc.subscriptions.wait_caught_up(svc.model.version)
            drain(session, subs)
            facts = {
                tuple([a.pred, *map(str, a.args)])
                for a in svc.model.current.database.facts()
            }
            for k, sub_id in by_goal.items():
                assert subs[sub_id]["state"] == scratch_rows(
                    {}, facts, plan.goals[k], program=plan.program
                )
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# Lifecycle: unsubscribe, batches, teardown
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_unsubscribe_mid_churn_stops_frames(self):
        svc = QueryService(TC)
        try:
            session = svc.open_session()
            subs: dict[int, dict] = {}
            sub_id = register(session, subs, "t(a, X)")
            svc.apply_delta(adds=[("e", "a", "b")])
            assert svc.subscriptions.wait_caught_up(svc.model.version)
            cutoff = svc.model.version
            assert session.unsubscribe(sub_id).ok
            for x in ("c", "d", "f"):
                svc.apply_delta(adds=[("e", "a", x)])
            assert svc.subscriptions.wait_caught_up(svc.model.version)
            frames = session.take_push_frames()
            assert all(f["version"] <= cutoff for f in frames)
            assert svc.subscriptions.active_count() == 0
        finally:
            svc.shutdown()

    def test_subscribe_inside_batch_diffs_only_at_commit(self):
        """Staged writes are invisible until ``:commit``; the commit then
        arrives as a single diff covering the whole batch."""
        svc = QueryService(TC)
        try:
            session = svc.open_session()
            assert session.execute(":begin").ok
            assert session.execute("+e(a, b)").ok
            subs: dict[int, dict] = {}
            register(session, subs, "t(a, X)")
            assert subs[1]["state"] == set()          # staged, not visible
            assert session.execute("+e(b, c)").ok
            assert session.pending_push_count() == 0  # nothing committed
            assert session.execute(":commit").ok
            assert svc.subscriptions.wait_caught_up(svc.model.version)
            frames = session.take_push_frames()
            assert len(frames) == 1
            assert {tuple(r) for r in frames[0]["adds"]} == {("b",), ("c",)}
        finally:
            svc.shutdown()

    def test_session_close_clears_subscriptions(self):
        svc = QueryService(TC)
        try:
            session = svc.open_session()
            subs: dict[int, dict] = {}
            register(session, subs, "t(X, Y)")
            assert svc.subscriptions.active_count() == 1
            session.close()
            assert svc.subscriptions.active_count() == 0
            svc.apply_delta(adds=[("e", "a", "b")])   # must not blow up
        finally:
            svc.shutdown()

    def test_slow_consumer_is_dropped_not_buffered(self):
        """A session that never drains its diffs loses the subscription
        (with a forced ``sub_dropped`` frame), bounding server memory."""
        svc = QueryService(TC, max_pending_diffs=3)
        try:
            session = svc.open_session()
            subs: dict[int, dict] = {}
            register(session, subs, "t(a, X)")
            for i in range(6):
                svc.apply_delta(adds=[("e", "a", f"x{i}")])
            assert svc.subscriptions.wait_caught_up(svc.model.version)
            assert svc.subscriptions.active_count() == 0
            frames = session.take_push_frames()
            assert [f["kind"] for f in frames[:-1]] == [FRAME_DIFF] * 3
            assert frames[-1]["kind"] == FRAME_DROPPED
            assert frames[-1]["reason"] == REASON_SLOW
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# The protocol path and the follower path
# ---------------------------------------------------------------------------


class TestTransport:
    def test_tcp_pushes_interleave_with_requests(self):
        svc = QueryService(TC)
        with run_in_thread(svc) as handle:
            with LineClient(handle.host, handle.port, timeout=10.0) as sub, \
                    LineClient(handle.host, handle.port,
                               timeout=10.0) as writer:
                response = sub.send(":subscribe t(a, X).")
                assert response.ok and response.data["rows"] == []
                writer.send("+e(a, b).")
                push = sub.recv_push(timeout=10.0)
                assert push is not None and push.kind == FRAME_DIFF
                assert push.data["adds"] == [["b"]]
                # The connection still serves requests after a push, and
                # pushes arriving mid-request are stashed, not lost.
                answer = sub.send("?- t(a, X).")
                assert answer.ok and answer.data["truth"]
                writer.send("+e(b, c).")
                push = sub.recv_push(timeout=10.0)
                assert push is not None and push.data["adds"] == [["c"]]
                # Ownership: another connection cannot cancel the sub.
                foreign = writer.send(":unsubscribe 1")
                assert not foreign.ok
                assert sub.send(":unsubscribe 1").ok
        svc.shutdown()

    def test_follower_serves_subscriptions_at_applied_version(self, tmp_path):
        from repro.replication import FollowerService, ReplicationHub

        fast = dict(
            fsync="never", checkpoint_every=None, connect_timeout=2.0,
            read_timeout=0.25, backoff_initial=0.02, backoff_max=0.2,
        )
        svc = QueryService(
            TC, data_dir=tmp_path / "leader", fsync="never",
            checkpoint_every=None,
        )
        ReplicationHub.attach(svc)
        with run_in_thread(svc) as handle:
            follower = FollowerService(
                handle.addr, tmp_path / "f", **fast
            )
            fsvc = follower.start()
            try:
                session = fsvc.open_session()
                subs: dict[int, dict] = {}
                register(session, subs, "t(a, X)")
                for u, v in [("a", "b"), ("b", "c")]:
                    svc.apply_delta(adds=[("e", u, v)])
                assert follower.wait_applied(svc.model.version)
                assert fsvc.subscriptions.wait_caught_up(
                    fsvc.model.version
                )
                drain(session, subs)
                assert subs[1]["state"] == {("b",), ("c",)}
                svc.apply_delta(dels=[("e", "a", "b")])
                assert follower.wait_applied(svc.model.version)
                assert fsvc.subscriptions.wait_caught_up(
                    fsvc.model.version
                )
                drain(session, subs)
                assert subs[1]["state"] == set()
            finally:
                follower.stop()
        svc.shutdown()


# ---------------------------------------------------------------------------
# The :sync bugfix: condition wait, dedicated waiter pool
# ---------------------------------------------------------------------------


class TestSync:
    def test_sync_wakes_on_publish_not_by_polling(self):
        svc = QueryService(TC)
        try:
            session = svc.open_session()
            target = svc.model.version + 1
            woke = []

            def wait():
                woke.append(session.execute(f":sync {target} 10"))

            thread = threading.Thread(target=wait)
            thread.start()
            time.sleep(0.05)           # let the waiter park
            svc.apply_delta(adds=[("e", "a", "b")])
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert woke and woke[0].ok
            assert woke[0].data["latest"] >= target
        finally:
            svc.shutdown()

    def test_sync_timeout_reports_not_yet(self):
        svc = QueryService(TC)
        try:
            session = svc.open_session()
            response = session.execute(
                f":sync {svc.model.version + 5} 0.05"
            )
            assert not response.ok and response.code == E_NOT_YET
            assert response.data["retryable"] is True
        finally:
            svc.shutdown()

    def test_parked_syncs_do_not_starve_queries(self):
        """Pool-size concurrent ``:sync`` waits must leave the query pool
        fully available (the PR's starvation regression)."""
        svc = QueryService(TC, max_workers=2)
        try:
            sessions = [svc.open_session() for _ in range(3)]
            target = svc.model.version + 100
            waits = [
                svc.submit(sessions[i], f":sync {target} 5")
                for i in range(2)
            ]
            start = time.monotonic()
            answer = svc.submit(sessions[2], "?- t(X, Y).").result(
                timeout=2.0
            )
            elapsed = time.monotonic() - start
            assert answer.ok
            assert elapsed < 2.0
            for f in waits:
                response = f.result(timeout=10.0)
                assert not response.ok and response.code == E_NOT_YET
        finally:
            svc.shutdown()
