"""Test-suite configuration: deterministic hypothesis runs.

The top-down prover's SLD search is depth-bounded but can blow up
combinatorially on adversarial random programs (the paper itself flags the
procedure as impractical in general — Section 3.2).  With free-running
randomness, the property tests occasionally draw such a program and a
20-second suite turns into a multi-minute one.  Derandomized draws give the
same coverage on every run, keep tier-1 wall-clock stable, and make
benchmark numbers comparable across PRs.
"""

from hypothesis import settings

settings.register_profile(
    "repro-deterministic",
    derandomize=True,
    deadline=None,
)
settings.load_profile("repro-deterministic")
