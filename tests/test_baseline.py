"""Tests for the mini-Prolog and the introduction's list library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline import (
    NIL,
    ListSetBaseline,
    PAtom,
    PClause,
    PrologEngine,
    PStruct,
    PVar,
    from_pterm,
    plist,
    struct,
)
from repro.baseline.prolog import Bindings, unify

X, Y, Z = PVar("X"), PVar("Y"), PVar("Z")


class TestTerms:
    def test_plist_round_trip(self):
        t = plist([1, 2, "a"])
        assert from_pterm(t) == [1, 2, "a"]

    def test_empty_list(self):
        assert from_pterm(NIL) == []

    def test_struct_str(self):
        assert str(struct("f", "a", 1)) == "f(a, 1)"
        assert str(plist([1, 2])) == "[1, 2]"


class TestUnify:
    def test_var_binding(self):
        b = Bindings()
        assert unify(X, PAtom("a"), b)
        assert b.walk(X) == PAtom("a")

    def test_struct_unify(self):
        b = Bindings()
        assert unify(struct("f", X, "b"), struct("f", "a", Y), b)
        assert b.walk(X) == PAtom("a")
        assert b.walk(Y) == PAtom("b")

    def test_clash(self):
        b = Bindings()
        assert not unify(struct("f", "a"), struct("f", "b"), b)

    def test_trail_undo(self):
        b = Bindings()
        mark = b.mark()
        unify(X, PAtom("a"), b)
        b.undo(mark)
        assert b.walk(X) == X

    def test_occurs_check_optional(self):
        b = Bindings()
        assert not unify(X, struct("f", X), b, occurs_check=True)


class TestEngine:
    def test_facts_and_rules(self):
        clauses = [
            PClause(struct("e", "a", "b")),
            PClause(struct("e", "b", "c")),
            PClause(struct("t", X, Y), (struct("e", X, Y),)),
            PClause(struct("t", X, Z), (struct("e", X, Y), struct("t", Y, Z))),
        ]
        eng = PrologEngine(clauses)
        assert eng.holds(struct("t", "a", "c"))
        assert not eng.holds(struct("t", "c", "a"))
        assert eng.count(struct("t", X, Y)) == 3

    def test_arithmetic(self):
        eng = PrologEngine([])
        (ans,) = list(eng.solve(struct("is", X, PStruct("+", (PAtom(2), PAtom(3))))))
        assert from_pterm(ans["X"]) == 5

    def test_comparison_builtins(self):
        eng = PrologEngine([])
        assert eng.holds(struct("<", 1, 2))
        assert not eng.holds(struct("<", 2, 1))
        assert eng.holds(struct("\\=", "a", "b"))


class TestListLibrary:
    """The paper's introduction, behaviourally."""

    def setup_method(self):
        self.lib = ListSetBaseline()

    def test_member(self):
        assert self.lib.member(2, [1, 2, 3])
        assert not self.lib.member(9, [1, 2, 3])
        assert not self.lib.member(1, [])

    def test_disj(self):
        assert self.lib.disjoint([1, 2], [3, 4])
        assert not self.lib.disjoint([1, 2], [2, 3])
        assert self.lib.disjoint([], [1])
        assert self.lib.disjoint([], [])

    def test_subset(self):
        assert self.lib.subset([1], [1, 2])
        assert self.lib.subset([], [1])
        assert not self.lib.subset([1, 9], [1, 2])

    def test_union(self):
        assert sorted(self.lib.union([1, 2], [2, 3])) == [1, 2, 3]
        assert self.lib.union([], []) == []

    def test_sumlist(self):
        assert self.lib.sumlist([1, 2, 3]) == 6
        assert self.lib.sumlist([]) == 0


# -- agreement with the LPS engine (the introduction's motivating claim:
# same semantics, different programming styles) ------------------------------

small_sets = st.frozensets(st.integers(0, 5), max_size=4)


@settings(max_examples=30, deadline=None)
@given(s1=small_sets, s2=small_sets)
def test_disj_agreement_with_lps(s1, s2):
    lib = ListSetBaseline()
    prolog_answer = lib.disjoint(sorted(s1), sorted(s2))
    assert prolog_answer == s1.isdisjoint(s2)

    from repro.core import Program, atom, clause, fact, setvalue, var_a, var_s
    from repro.core import const
    from repro.engine import solve

    from repro.core import horn

    x, y = var_a("x"), var_a("y")
    X, Y = var_s("X"), var_s("Y")
    sv1 = setvalue([const(i) for i in s1])
    sv2 = setvalue([const(i) for i in s2])
    p = Program.of(
        fact(atom("s1", sv1)),
        fact(atom("s2", sv2)),
        clause(atom("disj", X, Y), [(x, X), (y, Y)], [atom("neq", x, y)]),
        horn(atom("ok"), atom("s1", X), atom("s2", Y), atom("disj", X, Y)),
    )
    lps_answer = solve(p).holds(atom("ok"))
    assert lps_answer == s1.isdisjoint(s2)
    assert lps_answer == prolog_answer
