"""Unit tests for the durable-storage layers: codec, WAL, checkpoints.

The contract under test is *exactness of failure*: every torn or
bit-flipped field of a WAL record or checkpoint file must produce the
specified behavior — :class:`CodecError`/:class:`RecoveryError`, or a
logged quarantine-and-skip for the one legal crash signature (a torn
**final** WAL record) — and never a silently wrong value.  The end-to-end
crash property lives in ``tests/test_durability.py``.
"""

import json
import logging

import pytest

from repro import parse_program
from repro.core import app, atom, const, setvalue
from repro.lang import pretty_program
from repro.storage import (
    CodecError,
    DurableModel,
    RecoveryError,
    WriteAheadLog,
    decode_record,
    encode_record,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.storage.checkpoint import clean_temp_files
from repro.storage.codec import (
    FORMAT_VERSION,
    decode_atom,
    decode_atoms,
    decode_program,
    encode_atom,
    encode_program,
)
from repro.engine.database import Database


# ---------------------------------------------------------------------------
# Codec: record framing
# ---------------------------------------------------------------------------

class TestRecordFraming:
    def test_round_trip(self):
        line = encode_record("delta", {"version": 3, "adds": ["e(a, b)"]})
        assert "\n" not in line
        kind, data = decode_record(line)
        assert kind == "delta"
        assert data == {"version": 3, "adds": ["e(a, b)"]}

    def test_bad_json(self):
        with pytest.raises(CodecError, match="unparseable"):
            decode_record("{not json")

    def test_wrong_shape(self):
        for bad in ("[]", '"x"', '{"crc": 1}', '{"rec": [1, "k", {}]}',
                    '{"crc": "x", "rec": [1, "k", {}]}',
                    '{"crc": 1, "rec": [1, "k"]}'):
            with pytest.raises(CodecError, match="crc|unparseable"):
                decode_record(bad)

    def test_crc_detects_any_payload_change(self):
        line = encode_record("delta", {"version": 7, "adds": ["p(a)"]})
        obj = json.loads(line)
        # Tamper with every framing field without fixing the checksum.
        for mutate in (
            lambda o: o["rec"].__setitem__(0, FORMAT_VERSION + 1),
            lambda o: o["rec"].__setitem__(1, "program"),
            lambda o: o["rec"][2].__setitem__("version", 8),
            lambda o: o["rec"][2].__setitem__("adds", ["p(b)"]),
            lambda o: o["rec"][2].__setitem__("extra", 1),
        ):
            tampered = json.loads(line)
            mutate(tampered)
            with pytest.raises(CodecError, match="checksum mismatch"):
                decode_record(json.dumps(tampered))
        # Tampering with the crc itself is equally fatal.
        obj["crc"] ^= 1
        with pytest.raises(CodecError, match="checksum mismatch"):
            decode_record(json.dumps(obj))

    def test_future_format_version_rejected(self):
        line = encode_record("delta", {"version": 1})
        obj = json.loads(line)
        obj["rec"][0] = FORMAT_VERSION + 1
        import zlib
        body = json.dumps(obj["rec"], sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)
        obj["crc"] = zlib.crc32(body.encode())
        with pytest.raises(CodecError, match="unsupported record format"):
            decode_record(json.dumps(obj, sort_keys=True,
                                     separators=(",", ":")))

    def test_bitflip_every_byte_is_detected(self):
        """No single-bit flip anywhere in a record line decodes cleanly
        to the original payload."""
        line = encode_record("delta", {"version": 3, "adds": ["e(a, b)"]})
        raw = line.encode("ascii")
        original = decode_record(line)
        for i in range(len(raw)):
            flipped = bytearray(raw)
            flipped[i] ^= 0x01
            try:
                got = decode_record(flipped.decode("ascii", "replace"))
            except CodecError:
                continue
            assert got != original, f"byte {i}: flip decoded to original"


# ---------------------------------------------------------------------------
# Codec: terms / atoms / programs as concrete syntax
# ---------------------------------------------------------------------------

class TestValueCodec:
    def test_atom_round_trip(self):
        cases = [
            atom("e", const("a"), const("b")),
            atom("n", const(-42)),
            atom("s", setvalue([const(1), const("x y'z")])),
            atom("f1", app("f", const("a"))),
            atom("k", const("true")),
            atom("z"),
        ]
        for a in cases:
            assert decode_atom(encode_atom(a)) == a

    def test_non_ground_atom_rejected(self):
        from repro.core import var_a

        with pytest.raises(CodecError, match="non-ground"):
            encode_atom(atom("p", var_a("X")))
        with pytest.raises(CodecError, match="not ground"):
            decode_atom("p(X)")

    def test_atoms_list_is_sorted_and_typed(self):
        from repro.storage.codec import encode_atoms

        texts = encode_atoms([atom("p", const(2)), atom("p", const(1))])
        assert texts == ["p(1)", "p(2)"]
        with pytest.raises(CodecError, match="not a string"):
            decode_atoms([1])
        with pytest.raises(CodecError, match="bad atom"):
            decode_atoms(["p((("])

    def test_program_round_trip_lps_and_elps(self):
        p = parse_program("""
            t(X, Y) :- e(X, Y).
            t(X, Z) :- e(X, Y), t(Y, Z).
            s(X) :- n(X), not t(X, X).
            sf({1, 2, -3}).
        """)
        assert decode_program(encode_program(p)) == p
        q = parse_program("#elps\nnsf({{1, 2}, {}, 3}).")
        assert decode_program(encode_program(q)) == q

    def test_bad_program_payloads(self):
        with pytest.raises(CodecError, match="not a string"):
            decode_program(None)
        with pytest.raises(CodecError, match="bad stored program"):
            decode_program("p(X :-")


# ---------------------------------------------------------------------------
# WAL
# ---------------------------------------------------------------------------

def _wal_with_records(tmp_path, n=4, **kw):
    wal = WriteAheadLog(tmp_path, fsync="never", **kw)
    for v in range(2, 2 + n):
        wal.append_delta(v, [atom("e", const(f"a{v}"), const("b"))], [])
    wal.close()
    return wal


class TestWal:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.append_delta(2, [atom("e", const("a"), const("b"))],
                         [atom("e", const("b"), const("c"))])
        wal.append_program(3, "p(a).")
        wal.append_abort(4)
        wal.close()
        recs = WriteAheadLog(tmp_path).records()
        assert [k for k, _ in recs] == ["delta", "program", "abort"]
        assert recs[0][1] == {
            "version": 2, "epoch": 0,
            "adds": ["e(a, b)"], "dels": ["e(b, c)"],
        }
        assert recs[1][1] == {"version": 3, "epoch": 0, "source": "p(a)."}
        assert recs[2][1] == {"version": 4}

    def test_segment_rotation_and_truncation(self, tmp_path):
        wal = _wal_with_records(tmp_path, n=6, segment_max_bytes=100)
        segs = wal.segments()
        assert len(segs) > 1
        # Order and content survive rotation.
        versions = [d["version"] for _, d in wal.records()]
        assert versions == [2, 3, 4, 5, 6, 7]
        # Truncation removes only fully-covered, non-active segments.
        wal.truncate_through(versions[-1])
        remaining = wal.segments()
        assert len(remaining) == 1
        kept_versions = [d["version"] for _, d in wal.records()]
        assert kept_versions and kept_versions[-1] == 7

    def test_truncate_keeps_uncovered_segments(self, tmp_path):
        wal = _wal_with_records(tmp_path, n=6, segment_max_bytes=100)
        before = wal.segments()
        wal.truncate_through(2)   # only records <= 2 are covered
        after = wal.segments()
        assert after and len(after) >= len(before) - 1
        assert [d["version"] for _, d in wal.records()][-1] == 7

    def test_torn_tail_at_every_byte_of_final_record(self, tmp_path, caplog):
        """Truncating anywhere inside the final record recovers every
        earlier record and quarantines the torn bytes (logged)."""
        wal = _wal_with_records(tmp_path, n=3)
        seg = wal.segments()[0]
        raw = seg.read_bytes()
        lines = raw.split(b"\n")
        last_start = len(raw) - len(lines[-2]) - 1
        for cut in range(last_start + 1, len(raw)):
            seg.write_bytes(raw[:cut])
            for q in tmp_path.glob("*.quarantine-*"):
                q.unlink()
            caplog.clear()
            with caplog.at_level(logging.WARNING, logger="repro.storage"):
                recs = WriteAheadLog(tmp_path, fsync="never") \
                    .recover_records()
            assert [d["version"] for _, d in recs] == [2, 3]
            assert list(tmp_path.glob("*.quarantine-*"))
            assert any("torn final record" in r.message
                       for r in caplog.records)
        seg.write_bytes(raw)

    def test_complete_final_line_with_bad_crc_is_quarantined(
        self, tmp_path, caplog
    ):
        wal = _wal_with_records(tmp_path, n=3)
        seg = wal.segments()[0]
        raw = bytearray(seg.read_bytes())
        lines = raw.split(b"\n")
        # Flip one payload bit in the final (complete) record.
        raw[len(raw) - len(lines[-2]) // 2] ^= 0x02
        seg.write_bytes(bytes(raw))
        with caplog.at_level(logging.WARNING, logger="repro.storage"):
            recs = WriteAheadLog(tmp_path, fsync="never").recover_records()
        assert [d["version"] for _, d in recs] == [2, 3]
        assert list(tmp_path.glob("*.quarantine-*"))

    def test_bitflip_in_every_nonfinal_record_raises(self, tmp_path):
        """Corruption before the final record is never skippable: flip one
        bit in each byte region of each non-final record."""
        wal = _wal_with_records(tmp_path, n=3)
        seg = wal.segments()[0]
        raw = seg.read_bytes()
        lines = raw.split(b"\n")
        offset = 0
        for line in lines[:-2]:          # every non-final record
            for i in range(0, len(line), 7):   # sampled byte positions
                tampered = bytearray(raw)
                tampered[offset + i] ^= 0x01
                seg.write_bytes(bytes(tampered))
                with pytest.raises(RecoveryError,
                                   match="not the final record|torn tail"):
                    WriteAheadLog(tmp_path, fsync="never").recover_records()
            offset += len(line) + 1
        seg.write_bytes(raw)

    def test_torn_tail_in_nonfinal_segment_raises(self, tmp_path):
        wal = _wal_with_records(tmp_path, n=6, segment_max_bytes=100)
        segs = wal.segments()
        assert len(segs) > 1
        first = segs[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(RecoveryError, match="not the final segment"):
            WriteAheadLog(tmp_path, fsync="never").recover_records()

    def test_strict_records_raises_even_on_torn_tail(self, tmp_path):
        wal = _wal_with_records(tmp_path, n=2)
        seg = wal.segments()[0]
        seg.write_bytes(seg.read_bytes()[:-5])
        with pytest.raises(RecoveryError, match="corrupt WAL record"):
            WriteAheadLog(tmp_path, fsync="never").records()


# ---------------------------------------------------------------------------
# Recovery idempotence: quarantine sidecars vs truncation, double recovery
# ---------------------------------------------------------------------------

class TestRecoveryIdempotence:
    def test_quarantine_sidecar_orphaned_by_truncation_is_harmless(
        self, tmp_path
    ):
        """A repair leaves a ``*.quarantine-<n>`` sidecar next to its
        segment; when a later checkpoint truncates that segment away,
        the orphaned sidecar must never confuse subsequent recoveries —
        it is evidence, not state."""
        wal = _wal_with_records(tmp_path, n=6, segment_max_bytes=100)
        torn = wal.segments()[-1]
        torn.write_bytes(torn.read_bytes()[:-4])
        recs = WriteAheadLog(tmp_path, fsync="never").recover_records()
        sidecars = list(tmp_path.glob("*.quarantine-*"))
        assert len(sidecars) == 1
        assert sidecars[0].name.startswith(torn.name)
        last = recs[-1][1]["version"]

        # More traffic rotates past the repaired segment, then a
        # checkpoint-driven truncation deletes it — the sidecar stays.
        wal2 = WriteAheadLog(tmp_path, fsync="never",
                             segment_max_bytes=100)
        for v in range(last + 1, last + 5):
            wal2.append_delta(v, [atom("e", const(f"x{v}"), const("y"))],
                              [])
        wal2.close()
        removed = wal2.truncate_through(last + 4)
        assert torn in removed
        assert not torn.exists() and sidecars[0].exists()

        # Recovery is now a pure read: run it twice, demand identical
        # records, an unchanged directory, and no second sidecar.
        def listing():
            return sorted(
                (p.name, p.stat().st_size) for p in tmp_path.iterdir()
            )

        first = WriteAheadLog(tmp_path, fsync="never").recover_records()
        files = listing()
        second = WriteAheadLog(tmp_path, fsync="never").recover_records()
        assert first == second
        assert listing() == files
        assert len(list(tmp_path.glob("*.quarantine-*"))) == 1

    def test_double_recovery_same_dir_is_noop(self, tmp_path):
        """``DurableModel.recover`` twice over one directory: the first
        pass may repair a torn tail; the second must reproduce the same
        version and model while touching nothing on disk."""
        from repro.engine.setops import with_set_builtins

        m = DurableModel(
            parse_program("t(X, Y) :- e(X, Y)."), tmp_path, Database(),
            builtins=with_set_builtins(), fsync="never",
            checkpoint_every=None,
        )
        for i in range(3):
            m.apply_delta(adds=[("e", f"a{i}", "b")], dels=[])
        m.close()
        seg = WriteAheadLog(tmp_path).segments()[-1]
        seg.write_bytes(seg.read_bytes()[:-3])   # crash signature

        def recover():
            model = DurableModel.recover(
                tmp_path, builtins=with_set_builtins(), fsync="never",
                checkpoint_every=None,
            )
            try:
                return (
                    model.version,
                    model.epoch,
                    sorted(str(a) for a in model.current.interpretation),
                    sorted(str(a) for a in model.current.database.facts()),
                )
            finally:
                model.close()

        def listing():
            return sorted(
                (p.name, p.stat().st_size) for p in tmp_path.iterdir()
            )

        first = recover()
        assert first[0] == 3               # the torn fourth batch is gone
        files = listing()
        assert any("quarantine" in name for name, _ in files)
        assert recover() == first
        assert listing() == files          # second recovery wrote nothing


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------

PROGRAM = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
sf({1, 2}).
""")


def _db():
    db = Database()
    db.add("e", "a", "b")
    db.add("e", "b", "c")
    db.add("n", -5)
    return db


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = write_checkpoint(tmp_path, 7, PROGRAM, _db(), fsync=False)
        assert path.name == "ckpt-0000000000000007.json"
        version, epoch, program, db = load_checkpoint(path)
        assert version == 7
        assert epoch == 0
        assert program == PROGRAM
        assert sorted(map(str, db.facts())) == \
            sorted(map(str, _db().facts()))

    def test_truncation_at_every_line_is_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 3, PROGRAM, _db(), fsync=False)
        raw = path.read_bytes()
        offsets = [i + 1 for i, b in enumerate(raw) if b == 0x0A]
        for cut in [0, *offsets[:-1]]:
            path.write_bytes(raw[:cut])
            with pytest.raises(CodecError):
                load_checkpoint(path)
        path.write_bytes(raw)
        load_checkpoint(path)   # intact file still loads

    def test_bitflip_every_field_is_rejected(self, tmp_path):
        """Re-frame each record with one field changed but a *stale* CRC:
        every field of header, facts and footer is covered."""
        path = write_checkpoint(tmp_path, 3, PROGRAM, _db(), fsync=False)
        raw_lines = path.read_text().splitlines()
        for ln, line in enumerate(raw_lines):
            obj = json.loads(line)
            fields = list(obj["rec"][2]) if isinstance(obj["rec"][2], dict) \
                else []
            for fieldname in fields:
                tampered = json.loads(line)
                value = tampered["rec"][2][fieldname]
                tampered["rec"][2][fieldname] = (
                    value + 1 if isinstance(value, int) else str(value) + "x"
                )
                new_lines = list(raw_lines)
                new_lines[ln] = json.dumps(tampered)
                path.write_text("\n".join(new_lines) + "\n")
                with pytest.raises(CodecError, match="checksum mismatch"):
                    load_checkpoint(path)
        path.write_text("\n".join(raw_lines) + "\n")
        load_checkpoint(path)

    def test_semantic_corruption_with_valid_crc_is_rejected(self, tmp_path):
        """Even a correctly-checksummed record is rejected when its content
        contradicts the checkpoint structure."""
        path = write_checkpoint(tmp_path, 3, PROGRAM, _db(), fsync=False)
        lines = path.read_text().splitlines()

        def reframe(ln, mutate):
            obj = json.loads(lines[ln])
            fmt, kind, data = obj["rec"]
            kind, data = mutate(kind, data)
            out = list(lines)
            out[ln] = encode_record(kind, data)
            path.write_text("\n".join(out) + "\n")

        # Header promises more facts than the body holds.
        reframe(0, lambda k, d: (k, {**d, "facts": d["facts"] + 1}))
        with pytest.raises(CodecError, match="footer|fact records"):
            load_checkpoint(path)
        # A stray record kind inside the fact section.
        reframe(1, lambda k, d: ("delta", d))
        with pytest.raises(CodecError, match="stray"):
            load_checkpoint(path)
        # Header version disagreeing with the file name.
        reframe(0, lambda k, d: (k, {**d, "version": 99}))
        with pytest.raises(CodecError, match="file name disagrees"):
            load_checkpoint(path)
        # Unknown language mode.
        reframe(0, lambda k, d: (k, {**d, "mode": "prolog"}))
        with pytest.raises(CodecError, match="unknown mode"):
            load_checkpoint(path)

    def test_missing_footer_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 2, PROGRAM, _db(), fsync=False)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(CodecError, match="fact records|footer"):
            load_checkpoint(path)

    def test_clean_temp_files(self, tmp_path):
        write_checkpoint(tmp_path, 1, PROGRAM, _db(), fsync=False)
        stray = tmp_path / "ckpt-0000000000000002.json.tmp"
        stray.write_text("half-written")
        removed = clean_temp_files(tmp_path)
        assert [p.name for p in removed] == [stray.name]
        assert len(list_checkpoints(tmp_path)) == 1

    def test_orphan_tmp_swept_on_recovery(self, tmp_path):
        """Crash inside checkpoint() after creating ``ckpt-*.tmp`` but
        before ``os.replace``: the orphan holds no durable state and must
        be swept on the next open, not accumulate forever."""
        m = DurableModel(
            PROGRAM, tmp_path, _db(), fsync="never", checkpoint_every=None,
        )
        m.apply_delta(adds=[("e", "c", "d")], dels=[])
        m.close()
        orphan = tmp_path / "ckpt-0000000000000009.json.tmp"
        orphan.write_text('{"rec": ["half-written')
        model = DurableModel.open(PROGRAM, tmp_path, fsync="never")
        try:
            assert list(tmp_path.glob("*.tmp")) == []
            assert ("c", "d") in model.current.database.relation("e")
        finally:
            model.close()

    def test_orphan_tmp_swept_on_fresh_store(self, tmp_path):
        """Crash during a *fresh* store's very first base checkpoint: the
        directory holds only a ``.tmp``, so ``has_state`` is false and
        ``open()`` takes the fresh-create path — which must sweep the
        orphan too, or it shadows this store's checkpoints forever."""
        orphan = tmp_path / "ckpt-0000000000000000.json.tmp"
        orphan.write_text('{"rec": ["half-written')
        model = DurableModel.open(PROGRAM, tmp_path, fsync="never")
        try:
            model.apply_delta(adds=[("e", "c", "d")], dels=[])
            assert list(tmp_path.glob("*.tmp")) == []
            committed = model.version
        finally:
            model.close()
        reopened = DurableModel.open(PROGRAM, tmp_path, fsync="never")
        try:
            assert reopened.version == committed
            assert ("c", "d") in reopened.current.database.relation("e")
        finally:
            reopened.close()

    def test_list_checkpoints_skips_quarantined(self, tmp_path):
        p1 = write_checkpoint(tmp_path, 1, PROGRAM, _db(), fsync=False)
        write_checkpoint(tmp_path, 2, PROGRAM, _db(), fsync=False)
        p1.rename(p1.with_name(p1.name + ".corrupt"))
        assert [checkpoint.name for checkpoint in
                list_checkpoints(tmp_path)] == \
            ["ckpt-0000000000000002.json"]
