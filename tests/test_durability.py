"""Fault-injection harness for the durable storage subsystem.

The contract (DESIGN.md, "Durability"): **acknowledged ⇒ recoverable** —
for a crash at *any byte boundary* of the recorded run,
``DurableModel.recover(data_dir)`` reproduces exactly the model at the
last acknowledged version, bit-identical to from-scratch evaluation of
the surviving facts.  The harness records a run (capturing the reference
model after every acknowledged batch), then simulates the crash by
truncating the on-disk state at every byte boundary of the WAL and of a
checkpoint, recovering each prefix into a scratch directory, and
comparing against the reference.  Corruption (bit flips) must either be
quarantined at the torn tail or refuse recovery — never produce a model
that matches no acknowledged state.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.engine import Database, Evaluator
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.server import QueryService
from repro.storage import (
    DurableModel,
    RecoveryError,
    StorageError,
    WriteAheadLog,
    has_state,
)
from repro.storage.checkpoint import TMP_SUFFIX, list_checkpoints
from repro.storage.codec import encode_record
from repro.workloads import crash_recovery, mixed_traffic, random_graph

TC = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""


def render(snap):
    """The comparable identity of a snapshot: model atoms + EDB facts."""
    return (
        tuple(sorted(str(a) for a in snap.interpretation)),
        tuple(sorted(str(a) for a in snap.database.facts())),
    )


def durable(source, data_dir, facts=(), **kw):
    db = Database()
    for spec in facts:
        db.add(*spec)
    kw.setdefault("fsync", "never")
    kw.setdefault("checkpoint_every", None)
    return DurableModel(
        parse_program(source), data_dir, db,
        builtins=with_set_builtins(), **kw
    )


def recover(data_dir):
    return DurableModel.recover(
        data_dir, builtins=with_set_builtins(), fsync="never",
        checkpoint_every=None,
    )


def record_run(source, data_dir, facts, batches, checkpoint_at=None):
    """Run the batches durably; return the per-version reference states.

    ``reference[v]`` is the rendered model at acknowledged version ``v``;
    every non-noop batch appends exactly one WAL record, so the model
    after the ``k``-th complete WAL record is ``reference[base + k]``.
    """
    m = durable(source, data_dir, facts=facts)
    reference = {m.version: render(m.current)}
    for i, batch in enumerate(batches):
        snap = m.apply_delta(adds=batch.adds, dels=batch.dels)
        reference[snap.version] = render(m.current)
        if checkpoint_at is not None and i == checkpoint_at:
            m.checkpoint()
    m.close()
    return reference


def single_wal_segment(data_dir):
    segs = WriteAheadLog(data_dir).segments()
    assert len(segs) == 1, "harness assumes an unrotated WAL"
    return segs[0]


def crash_copy(run_dir, work_dir):
    if work_dir.exists():
        shutil.rmtree(work_dir)
    shutil.copytree(run_dir, work_dir)
    return work_dir


def assert_recovers_exactly(work_dir, expected_version, reference,
                            scratch_eval=False):
    m = recover(work_dir)
    try:
        assert m.version == expected_version, (
            f"recovered at version {m.version}, expected {expected_version}"
        )
        assert render(m.current) == reference[expected_version]
        if scratch_eval:
            fresh = Evaluator(
                m.program, m._materialized.database,
                builtins=with_set_builtins(), options=EvalOptions(),
            ).run()
            assert m.current.interpretation == fresh.interpretation
    finally:
        m.close()


# ---------------------------------------------------------------------------
# The headline property: crash at EVERY byte boundary of the WAL
# ---------------------------------------------------------------------------

class TestCrashAtEveryWalByte:
    def test_mixed_feature_program_every_byte(self, tmp_path):
        """Sets, negation and grouping under churn: for every prefix of
        the WAL byte stream, recovery lands exactly on the model at the
        last acknowledged version."""
        plan = crash_recovery(
            n_nodes=8, n_edges=12, n_batches=8, batch_size=1,
            n_sets=2, seed=1,
        )
        run_dir = tmp_path / "run"
        reference = record_run(
            plan.program, run_dir, plan.initial_facts, plan.batches
        )
        seg = single_wal_segment(run_dir)
        raw = seg.read_bytes()
        base = min(reference)
        assert len(reference) == raw.count(b"\n") + 1
        work = tmp_path / "crash"
        for cut in range(len(raw) + 1):
            crash_copy(run_dir, work)
            (work / seg.name).write_bytes(raw[:cut])
            k = raw[:cut].count(b"\n")
            # From-scratch equivalence is re-checked at record boundaries
            # (between them the recovered state cannot change).
            boundary = cut == 0 or raw[cut - 1:cut] == b"\n"
            assert_recovers_exactly(
                work, base + k, reference, scratch_eval=boundary
            )

    def test_every_byte_of_a_checkpoint(self, tmp_path):
        """A torn checkpoint (non-atomic rename, bit rot) is quarantined
        and recovery falls back to the previous checkpoint + full WAL —
        landing on the *final* acknowledged state for every byte prefix."""
        # Kept small: every byte prefix forces a fallback that replays the
        # whole WAL, so the matrix is |checkpoint| × full recoveries.
        plan = crash_recovery(
            n_nodes=6, n_edges=9, n_batches=6, batch_size=1,
            n_sets=1, seed=2,
        )
        run_dir = tmp_path / "run"
        reference = record_run(
            plan.program, run_dir, plan.initial_facts, plan.batches,
            checkpoint_at=2,
        )
        final_version = max(reference)
        ckpts = list_checkpoints(run_dir)
        assert len(ckpts) == 2, "mid-run checkpoint plus the initial one"
        latest = ckpts[-1]
        raw = latest.read_bytes()
        work = tmp_path / "crash"
        for cut in range(len(raw)):   # len(raw) itself is the intact file
            crash_copy(run_dir, work)
            (work / latest.name).write_bytes(raw[:cut])
            assert_recovers_exactly(work, final_version, reference)
            # Every strict prefix except "all but the trailing newline"
            # (still a complete record sequence) must be quarantined.
            if cut < len(raw) - 1:
                assert any(
                    p.name.endswith(".corrupt") for p in work.iterdir()
                ), "torn checkpoint must be quarantined, not deleted"

    def test_crash_before_checkpoint_rename(self, tmp_path):
        """A crash mid-checkpoint leaves only a temp file: recovery
        ignores and removes it, and loses nothing."""
        plan = crash_recovery(n_nodes=6, n_edges=8, n_batches=4, seed=3)
        run_dir = tmp_path / "run"
        reference = record_run(
            plan.program, run_dir, plan.initial_facts, plan.batches
        )
        final_version = max(reference)
        ckpt = list_checkpoints(run_dir)[0]
        stray = run_dir / (f"ckpt-{final_version:016d}.json" + TMP_SUFFIX)
        stray.write_bytes(ckpt.read_bytes()[:37])
        assert_recovers_exactly(run_dir, final_version, reference)
        assert not stray.exists()


# ---------------------------------------------------------------------------
# Corruption: detected and contained, never a silently wrong model
# ---------------------------------------------------------------------------

class TestCorruptionNeverLies:
    def test_bitflip_anywhere_in_wal_is_detected_or_exact(self, tmp_path):
        """Flip one bit at every (sampled) byte of the WAL: recovery must
        either refuse (RecoveryError) or — when the flip hits the final
        record, which is indistinguishable from a torn write — quarantine
        it and land exactly on the previous acknowledged state."""
        plan = crash_recovery(
            n_nodes=8, n_edges=12, n_batches=6, batch_size=1, seed=4,
        )
        run_dir = tmp_path / "run"
        reference = record_run(
            plan.program, run_dir, plan.initial_facts, plan.batches
        )
        seg = single_wal_segment(run_dir)
        raw = seg.read_bytes()
        work = tmp_path / "crash"
        refused = accepted = 0
        for pos in range(0, len(raw), 3):
            crash_copy(run_dir, work)
            flipped = bytearray(raw)
            flipped[pos] ^= 0x04
            (work / seg.name).write_bytes(bytes(flipped))
            try:
                m = recover(work)
            except RecoveryError:
                refused += 1
                continue
            try:
                accepted += 1
                assert m.version in reference, (
                    f"bit flip at byte {pos} recovered to unknown "
                    f"version {m.version}"
                )
                assert render(m.current) == reference[m.version], (
                    f"bit flip at byte {pos} produced a wrong model at "
                    f"version {m.version}"
                )
            finally:
                m.close()
        # Both behaviors must actually occur across the scan.
        assert refused and accepted

    def test_all_checkpoints_corrupt_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        m = durable(TC, run_dir, facts=[("e", "a", "b")])
        m.close()
        for ckpt in list_checkpoints(run_dir):
            data = bytearray(ckpt.read_bytes())
            data[10] ^= 0xFF
            ckpt.write_bytes(bytes(data))
        with pytest.raises(RecoveryError, match="no loadable checkpoint"):
            recover(run_dir)

    def test_wal_version_gap_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        m = durable(TC, run_dir, facts=[("e", "a", "b")])
        m.apply_delta(adds=[("e", "b", "c")])
        m.close()
        with open(single_wal_segment(run_dir), "a") as f:
            f.write(encode_record("delta", {
                "version": 9, "adds": ["e(x, y)"], "dels": [],
            }) + "\n")
        with pytest.raises(RecoveryError, match="WAL gap"):
            recover(run_dir)

    def test_unknown_record_kind_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        m = durable(TC, run_dir, facts=[("e", "a", "b")])
        m.close()
        with open(single_wal_segment(run_dir) if WriteAheadLog(
            run_dir
        ).segments() else run_dir / "wal-0000000000000002.log", "a") as f:
            f.write(encode_record("mystery", {"version": 2}) + "\n")
        with pytest.raises(RecoveryError, match="unknown WAL record kind"):
            recover(run_dir)

    def test_abort_tombstones_are_skipped(self, tmp_path):
        """A logged-but-never-applied batch (apply failed before publish)
        is tombstoned; replay skips the pair and continues with the next
        genuine record for the same version."""
        run_dir = tmp_path / "run"
        m = durable(TC, run_dir, facts=[("e", "a", "b")])
        m.apply_delta(adds=[("e", "b", "c")])      # version 2
        m.close()
        wal = WriteAheadLog(run_dir, fsync="never")
        from repro.core import atom, const

        dead = atom("e", const("c"), const("dead"))
        live = atom("e", const("c"), const("d"))
        wal.append_delta(3, [dead], [])
        wal.append_abort(3)
        wal.append_delta(3, [live], [])
        wal.close()
        r = recover(run_dir)
        try:
            assert r.version == 3
            assert r.current.holds(live)
            assert not r.current.holds(dead)
        finally:
            r.close()


# ---------------------------------------------------------------------------
# Hypothesis: the crash property over random Kuper87 programs
# ---------------------------------------------------------------------------

#: Stratified for any subset; covers DRed (recursion), counting
#: (nonrecursive conjunctive), recompute (negation/grouping/sets).
RULE_POOL = [
    "t(X, Y) :- e(X, Y).",
    "t(X, Z) :- e(X, Y), t(Y, Z).",
    "dead(X) :- n(X), not t(X, X).",
    "succ(X, <Y>) :- e(X, Y).",
    "mem(X) :- sf(S), X in S.",
    "pair(X, Y) :- mem(X), mem(Y), X != Y.",
]

_NODES = ["a", "b", "c"]
FACT_SPACE = (
    [("e", u, v) for u in _NODES for v in _NODES]
    + [("n", u) for u in _NODES]
    + [("sf", frozenset(s)) for s in [("a",), ("a", "b"), ("b", "c")]]
)


@settings(max_examples=12, deadline=None)
@given(
    rule_idx=st.sets(
        st.integers(0, len(RULE_POOL) - 1), min_size=1, max_size=4
    ),
    initial=st.sets(st.sampled_from(FACT_SPACE), max_size=6),
    batches=st.lists(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(FACT_SPACE)),
            min_size=1, max_size=3,
        ),
        min_size=1, max_size=3,
    ),
)
def test_random_program_crash_property(rule_idx, initial, batches):
    """For random programs and churn batches: recovery at every record
    boundary and at probe offsets inside every record reproduces the model
    at the last acknowledged version, equal to from-scratch evaluation."""
    source = "\n".join(RULE_POOL[i] for i in sorted(rule_idx))
    root = Path(tempfile.mkdtemp(prefix="lps-durability-"))
    try:
        run_dir = root / "run"
        m = durable(source, run_dir, facts=sorted(initial, key=str))
        reference = {m.version: render(m.current)}
        for batch in batches:
            adds = [spec for add, spec in batch if add]
            dels = [spec for add, spec in batch if not add]
            snap = m.apply_delta(adds=adds, dels=dels)
            reference[snap.version] = render(m.current)
        m.close()
        seg = single_wal_segment(run_dir) \
            if WriteAheadLog(run_dir).segments() else None
        raw = seg.read_bytes() if seg else b""
        base = min(reference)
        # Crash points: every record boundary plus three offsets into the
        # following record (first byte, middle, last byte).
        cuts = {0, len(raw)}
        offset = 0
        for line in raw.split(b"\n")[:-1]:
            ln = len(line) + 1
            cuts.update({
                offset + 1, offset + ln // 2, offset + ln - 1, offset + ln,
            })
            offset += ln
        work = root / "crash"
        for cut in sorted(cuts):
            crash_copy(run_dir, work)
            if seg is not None:
                (work / seg.name).write_bytes(raw[:cut])
            k = raw[:cut].count(b"\n")
            assert_recovers_exactly(
                work, base + k, reference, scratch_eval=True
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# Service-level durability: restart mid-workload
# ---------------------------------------------------------------------------

class TestServiceRestart:
    def test_commit_is_logged_before_it_is_acknowledged(self, tmp_path):
        d = tmp_path / "store"
        svc = QueryService(TC, data_dir=d, fsync="never")
        try:
            s = svc.open_session()
            s.execute(":begin")
            s.execute("+e(a, b).")
            s.execute("+e(b, c).")
            resp = s.execute(":commit")
            assert resp.ok and resp.version == 2
            # The acknowledged commit is already on disk.
            recs = WriteAheadLog(d).records()
            assert recs[-1][0] == "delta"
            assert recs[-1][1]["version"] == 2
            assert sorted(recs[-1][1]["adds"]) == ["e(a, b)", "e(b, c)"]
        finally:
            svc.shutdown()

    def test_restart_mid_mixed_traffic(self, tmp_path):
        """Crash-restart halfway through a mixed_traffic run: versions
        resume monotonically, pre-restart pins return retired_version,
        and the durable service stays equivalent to an in-memory service
        fed the same batches."""
        edges = random_graph(10, 20, seed=6)
        plan = mixed_traffic(
            edges, n_readers=2, queries_per_reader=6, n_batches=10,
            batch_size=2, n_nodes=10, seed=6,
        )
        d = tmp_path / "traffic"

        def edge_db():
            db = Database()
            for u, v in edges:
                db.add("e", u, v)
            return db

        svc = QueryService(TC, database=edge_db(), data_dir=d,
                           fsync="never")
        versions = [svc.model.version]
        half = len(plan.writer_batches) // 2
        for batch in plan.writer_batches[:half]:
            versions.append(
                svc.apply_delta(adds=batch.adds, dels=batch.dels).version
            )
        sess = svc.open_session()
        pin_version = versions[-2]
        assert sess.execute(f":at {pin_version}").ok
        # Simulated kill -9: the service object is abandoned un-shut-down;
        # every acknowledged append is already flushed to the WAL file.
        del svc, sess

        svc2 = QueryService(data_dir=d, fsync="never")
        try:
            assert svc2.model.version == versions[-1]
            s2 = svc2.open_session()
            resp = s2.execute(f":at {pin_version}")
            assert resp.code == "retired_version"
            for batch in plan.writer_batches[half:]:
                versions.append(svc2.apply_delta(
                    adds=batch.adds, dels=batch.dels
                ).version)
            assert all(a < b for a, b in zip(versions, versions[1:])), (
                "version numbers must stay strictly monotone across the "
                f"restart: {versions}"
            )
            # Reader equivalence against a from-scratch in-memory service.
            ref = QueryService(TC, database=edge_db())
            try:
                for batch in plan.writer_batches:
                    ref.apply_delta(adds=batch.adds, dels=batch.dels)
                rs = ref.open_session()
                for stream in plan.reader_streams:
                    for q in stream:
                        got = s2.execute(f"?- {q}.")
                        want = rs.execute(f"?- {q}.")
                        assert got.ok and want.ok
                        assert got.data["rows"] == want.data["rows"], q
            finally:
                ref.shutdown()
        finally:
            svc2.shutdown()

    def test_repl_save_open_round_trip(self, tmp_path):
        """The REPL facade: :save freezes an in-memory session into a
        durable store; :open recovers it with the version preserved."""
        from repro.repl.cli import Session as ReplSession

        repl = ReplSession(TC)
        repl._session.assert_fact("e(a, b)")
        repl._session.assert_fact("e(b, c)")
        saved_version = repl.service.model.version
        target = str(tmp_path / "snap")
        repl.save(target)
        assert has_state(target)
        reopened = repl.open(target)
        try:
            assert reopened.service.model.version == saved_version
            result = reopened._session.query("t(a, X)")
            assert [str(t) for row in result.rows for t in row] == ["b", "c"]
            # :save on the durable session itself is a checkpoint.
            reopened._session.assert_fact("e(c, d)")
            reopened.save(target)
            assert len(list_checkpoints(Path(target))) == 2
        finally:
            reopened.service.shutdown()

    def test_extend_program_after_recovery_with_tricky_constants(
        self, tmp_path
    ):
        """The recovered source lines must come from the round-trip-verified
        pretty-printer: quoted, keyword and capitalized constants in the
        stored program survive a restart *and* later program extension."""
        d = tmp_path / "store"
        svc = QueryService(
            "p('don''t stop'). p('true'). p('Abc').\nq(X) :- p(X).",
            data_dir=d, fsync="never",
        )
        svc.shutdown()
        svc2 = QueryService(data_dir=d, fsync="never")
        try:
            s = svc2.open_session()
            s.execute("r(X) :- p(X).")     # re-parses the joined source
            rows = s.execute("?- r(X).").data["rows"]
            assert sorted(r["X"] for r in rows) == \
                ["Abc", "don't stop", "true"]
        finally:
            svc2.shutdown()

    def test_save_refuses_existing_state(self, tmp_path):
        from repro.repl.cli import Session as ReplSession

        repl = ReplSession(TC)
        target = str(tmp_path / "snap")
        repl.save(target)
        with pytest.raises(StorageError, match="already holds"):
            repl.save(target)
        repl.service.shutdown()
