"""Pretty-printer tests, including parse∘pretty round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.lang import parse_program
from repro.lang.pretty import (
    pretty_atom,
    pretty_clause,
    pretty_program,
    pretty_term,
)

# NB: pretty-printed variables must start upper-case to re-parse as
# variables, so round-trip tests use upper-case names of the right sort.
X, Y = var_a("X"), var_a("Y")
S, T = var_s("S"), var_s("T")
a, b = const("a"), const("b")


class TestTermPrinting:
    def test_constants(self):
        assert pretty_term(a) == "a"
        assert pretty_term(const(7)) == "7"
        assert pretty_term(const("Hello world")) == "'Hello world'"

    def test_sets_sorted(self):
        assert pretty_term(setvalue([const(2), const(1)])) == "{1, 2}"

    def test_apps(self):
        from repro.core import app

        assert pretty_term(app("f", a, b)) == "f(a, b)"


class TestAtomPrinting:
    def test_operators(self):
        from repro.core import equals

        assert pretty_atom(equals(X, Y)) == "X = Y"
        assert pretty_atom(member(X, S)) == "X in S"
        assert pretty_atom(atom("neq", X, Y)) == "X != Y"
        assert pretty_atom(atom("lt", X, Y)) == "X < Y"

    def test_negated_operator_parenthesised(self):
        from repro.core import equals
        from repro.lang.pretty import pretty_literal

        assert pretty_literal(neg(equals(X, Y))) == "not (X = Y)"
        assert pretty_literal(neg(atom("p", X))) == "not p(X)"


class TestClausePrinting:
    def test_quantified_clause(self):
        c = clause(atom("disj", S, T), [(X, S), (Y, T)],
                   [atom("neq", X, Y)])
        text = pretty_clause(c)
        assert text == (
            "disj(S, T) :- forall X in S (forall Y in T (X != Y))."
        )

    def test_grouping_clause(self):
        from repro.core import GroupingClause

        g = GroupingClause(
            pred="bom", head_args=(X,), group_pos=1, group_var=Y,
            body=(pos(atom("comp", X, Y)),),
        )
        assert pretty_clause(g) == "bom(X, <Y>) :- comp(X, Y)."


class TestRoundTrip:
    def round_trip(self, program: Program) -> Program:
        return parse_program(pretty_program(program))

    def assert_same_relations(self, p1: Program, p2: Program):
        from repro.engine import solve

        m1, m2 = solve(p1), solve(p2)
        for pred in p1.predicates():
            assert m1.relation(pred) == m2.relation(pred), pred

    def test_horn_round_trip(self):
        p = Program.of(
            fact(atom("e", a, b)),
            horn(atom("t", X, Y), atom("e", X, Y)),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_quantified_round_trip(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            clause(atom("disj", S, T), [(X, S), (Y, T)],
                   [atom("neq", X, Y)]),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_negation_round_trip(self):
        p = Program.of(
            fact(atom("q", a)),
            fact(atom("n", a)),
            fact(atom("n", b)),
            horn(atom("p", X), pos(atom("n", X)), neg(atom("q", X))),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_grouping_round_trip(self):
        from repro.core import GroupingClause

        p = Program.of(
            fact(atom("comp", a, b)),
            GroupingClause(
                pred="bom", head_args=(X,), group_pos=1, group_var=Y,
                body=(pos(atom("comp", X, Y)),),
            ),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_set_fact_round_trip(self):
        p = Program.of(fact(atom("s", setvalue([a, b, const(3)]))))
        self.assert_same_relations(p, self.round_trip(p))


class TestAsymmetryRegressions:
    """Printer/parser asymmetries shaken out by the structural property
    below (each was a parse failure or a changed term before the fix)."""

    def test_negative_integer_literals(self):
        p = Program.of(fact(atom("p", const(-3))))
        assert parse_program(pretty_program(p)) == p

    def test_quote_escaping(self):
        for payload in ["don't", "''", "", "a b'c", "'"]:
            p = Program.of(fact(atom("p", const(payload))))
            assert parse_program(pretty_program(p)) == p, payload

    def test_keyword_constants_are_quoted(self):
        # to_term(True) produces Const("true"); bare `true` lexes as a
        # KEYWORD and cannot re-parse in term position.
        for kw in ["true", "forall", "in", "not", "or", "and", "exists"]:
            p = Program.of(fact(atom("p", const(kw))))
            text = pretty_program(p)
            assert f"'{kw}'" in text
            assert parse_program(text) == p

    def test_binary_minus_still_parses(self):
        p = parse_program("k(K) :- n(M), M - 3 = K.")
        assert parse_program(pretty_program(p)) == p


# -- property-based round-trip on generated programs -------------------------

pred_names = st.sampled_from(["p", "q", "r"])
const_terms = st.sampled_from([a, b, const(1), const(2)])


@st.composite
def simple_programs(draw):
    clauses = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["fact", "set_fact", "rule"]))
        if kind == "fact":
            clauses.append(fact(atom(draw(pred_names), draw(const_terms))))
        elif kind == "set_fact":
            elems = draw(st.frozensets(const_terms, max_size=3))
            clauses.append(fact(atom("s", setvalue(elems))))
        else:
            clauses.append(
                horn(atom("h", X), atom(draw(pred_names), X))
            )
    return Program.of(*clauses)


@settings(max_examples=30, deadline=None)
@given(p=simple_programs())
def test_round_trip_preserves_model(p):
    from repro.engine import solve

    q = parse_program(pretty_program(p))
    m1, m2 = solve(p), solve(q)
    assert m1.interpretation == m2.interpretation


# -- structural round-trip: parse(pretty_program(p)) == p ---------------------
#
# The durable-storage codec serializes programs and facts as concrete
# syntax, so the pretty ⇄ parse round trip must be *structural* (bit-exact
# clause tuples), not merely model-preserving.  The strategy covers the
# full term zoo — negative ints, quoted strings with embedded quotes and
# keywords, function applications, set terms, nested (ELPS) sets — and the
# clause zoo: facts, Horn rules, negation, restricted quantifiers, LDL
# grouping.  Predicate/function arities are fixed per symbol so generated
# programs always pass `Program.predicates()` validation.

from repro.core import GroupingClause, app, equals  # noqa: E402

_tricky_text = st.text(
    alphabet=sorted(set("abzAZ09 '%{}.,:-_!?")), max_size=8
)
_scalar_terms = st.one_of(
    st.integers(-99, 99).map(const),
    st.sampled_from(["a", "b", "c", "item", "x_1"]).map(const),
    st.sampled_from(["true", "not", "in", "forall"]).map(const),
    _tricky_text.map(const),
)
_app_terms = st.one_of(
    st.builds(lambda t: app("f", t), _scalar_terms),
    st.builds(lambda t, u: app("g2f", t, u), _scalar_terms, _scalar_terms),
)
_atomic_terms = st.one_of(_scalar_terms, _app_terms)
_flat_sets = st.frozensets(_atomic_terms, max_size=3).map(setvalue)
_nested_sets = st.frozensets(
    st.one_of(_atomic_terms, _flat_sets), max_size=3
).map(setvalue)


def _lps_clause_strategies():
    facts = st.one_of(
        st.builds(lambda t: fact(atom("p", t)), _atomic_terms),
        st.builds(
            lambda t, u: fact(atom("q", t, u)), _atomic_terms, _atomic_terms
        ),
        st.builds(lambda s: fact(atom("sf", s)), _flat_sets),
    )
    rules = st.one_of(
        st.builds(lambda: horn(atom("p", X), atom("p", X))),
        st.builds(
            lambda n: horn(atom("p", X), pos(atom("q", X, Y)),
                           neg(atom("p", Y)))
            if n else horn(atom("p", X), atom("q", X, Y)),
            st.booleans(),
        ),
        st.builds(lambda: horn(atom("p", X), neg(equals(X, Y)),
                               pos(atom("q", X, Y)))),
        st.builds(
            lambda: clause(atom("disj", S, T), [(X, S), (Y, T)],
                           [atom("neq", X, Y)])
        ),
        st.builds(
            lambda: clause(atom("allp", S), [(X, S)], [atom("p", X)])
        ),
        # One pred per grouped position: mixing positions on one pred is
        # a genuine sort conflict (grouped position is set-sorted).
        st.builds(
            lambda gp: GroupingClause(
                pred=f"bom{gp}", head_args=(X,), group_pos=gp, group_var=Y,
                body=(pos(atom("q", X, Y)),),
            ),
            st.integers(0, 1),
        ),
    )
    return st.one_of(facts, rules)


from repro.core.atoms import pos as _pos  # noqa: E402,F401


@st.composite
def structural_programs(draw):
    clauses = draw(
        st.lists(_lps_clause_strategies(), min_size=1, max_size=6)
    )
    return Program.of(*clauses)


@st.composite
def elps_programs(draw):
    """Nested-set (ELPS) fact programs — the nested-relation payloads."""
    clauses = [
        fact(atom("nsf", draw(_nested_sets)))
        for _ in range(draw(st.integers(1, 4)))
    ]
    return Program.of(*clauses, mode="elps")


@settings(max_examples=120, deadline=None)
@given(p=structural_programs())
def test_structural_round_trip_lps(p):
    assert parse_program(pretty_program(p)) == p


@settings(max_examples=60, deadline=None)
@given(p=elps_programs())
def test_structural_round_trip_elps(p):
    assert parse_program(pretty_program(p)) == p
