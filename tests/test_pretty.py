"""Pretty-printer tests, including parse∘pretty round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Program,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    neg,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.lang import parse_program
from repro.lang.pretty import (
    pretty_atom,
    pretty_clause,
    pretty_program,
    pretty_term,
)

# NB: pretty-printed variables must start upper-case to re-parse as
# variables, so round-trip tests use upper-case names of the right sort.
X, Y = var_a("X"), var_a("Y")
S, T = var_s("S"), var_s("T")
a, b = const("a"), const("b")


class TestTermPrinting:
    def test_constants(self):
        assert pretty_term(a) == "a"
        assert pretty_term(const(7)) == "7"
        assert pretty_term(const("Hello world")) == "'Hello world'"

    def test_sets_sorted(self):
        assert pretty_term(setvalue([const(2), const(1)])) == "{1, 2}"

    def test_apps(self):
        from repro.core import app

        assert pretty_term(app("f", a, b)) == "f(a, b)"


class TestAtomPrinting:
    def test_operators(self):
        from repro.core import equals

        assert pretty_atom(equals(X, Y)) == "X = Y"
        assert pretty_atom(member(X, S)) == "X in S"
        assert pretty_atom(atom("neq", X, Y)) == "X != Y"
        assert pretty_atom(atom("lt", X, Y)) == "X < Y"

    def test_negated_operator_parenthesised(self):
        from repro.core import equals
        from repro.lang.pretty import pretty_literal

        assert pretty_literal(neg(equals(X, Y))) == "not (X = Y)"
        assert pretty_literal(neg(atom("p", X))) == "not p(X)"


class TestClausePrinting:
    def test_quantified_clause(self):
        c = clause(atom("disj", S, T), [(X, S), (Y, T)],
                   [atom("neq", X, Y)])
        text = pretty_clause(c)
        assert text == (
            "disj(S, T) :- forall X in S (forall Y in T (X != Y))."
        )

    def test_grouping_clause(self):
        from repro.core import GroupingClause

        g = GroupingClause(
            pred="bom", head_args=(X,), group_pos=1, group_var=Y,
            body=(pos(atom("comp", X, Y)),),
        )
        assert pretty_clause(g) == "bom(X, <Y>) :- comp(X, Y)."


class TestRoundTrip:
    def round_trip(self, program: Program) -> Program:
        return parse_program(pretty_program(program))

    def assert_same_relations(self, p1: Program, p2: Program):
        from repro.engine import solve

        m1, m2 = solve(p1), solve(p2)
        for pred in p1.predicates():
            assert m1.relation(pred) == m2.relation(pred), pred

    def test_horn_round_trip(self):
        p = Program.of(
            fact(atom("e", a, b)),
            horn(atom("t", X, Y), atom("e", X, Y)),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_quantified_round_trip(self):
        p = Program.of(
            fact(atom("s", setvalue([a]))),
            fact(atom("s", setvalue([b]))),
            clause(atom("disj", S, T), [(X, S), (Y, T)],
                   [atom("neq", X, Y)]),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_negation_round_trip(self):
        p = Program.of(
            fact(atom("q", a)),
            fact(atom("n", a)),
            fact(atom("n", b)),
            horn(atom("p", X), pos(atom("n", X)), neg(atom("q", X))),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_grouping_round_trip(self):
        from repro.core import GroupingClause

        p = Program.of(
            fact(atom("comp", a, b)),
            GroupingClause(
                pred="bom", head_args=(X,), group_pos=1, group_var=Y,
                body=(pos(atom("comp", X, Y)),),
            ),
        )
        self.assert_same_relations(p, self.round_trip(p))

    def test_set_fact_round_trip(self):
        p = Program.of(fact(atom("s", setvalue([a, b, const(3)]))))
        self.assert_same_relations(p, self.round_trip(p))


# -- property-based round-trip on generated programs -------------------------

pred_names = st.sampled_from(["p", "q", "r"])
const_terms = st.sampled_from([a, b, const(1), const(2)])


@st.composite
def simple_programs(draw):
    clauses = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["fact", "set_fact", "rule"]))
        if kind == "fact":
            clauses.append(fact(atom(draw(pred_names), draw(const_terms))))
        elif kind == "set_fact":
            elems = draw(st.frozensets(const_terms, max_size=3))
            clauses.append(fact(atom("s", setvalue(elems))))
        else:
            clauses.append(
                horn(atom("h", X), atom(draw(pred_names), X))
            )
    return Program.of(*clauses)


@settings(max_examples=30, deadline=None)
@given(p=simple_programs())
def test_round_trip_preserves_model(p):
    from repro.engine import solve

    q = parse_program(pretty_program(p))
    m1, m2 = solve(p), solve(q)
    assert m1.interpretation == m2.interpretation
