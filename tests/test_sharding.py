"""Sharded parallel evaluation (`repro.parallel`).

The contract under test: ``EvalOptions(shards=N)`` changes *nothing* but
wall-clock — for every program the engine accepts, evaluation and
incremental maintenance produce an interpretation **bit-identical** to
the single-process path at every shard count, whether a stratum actually
runs sharded (linear recursion) or falls back to the coordinator
(negation, grouping, nonlinear recursion, domain-sensitive rules).

The rule pool deliberately mixes both kinds so random programs exercise
the fallback matrix, and the modes axis covers the columnar ×
compile_plans executor grid like ``test_maintenance.py`` does.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_program
from repro.engine import Database, Evaluator, MaterializedModel
from repro.engine.builtins import DEFAULT_BUILTINS
from repro.engine.evaluation import EvalOptions
from repro.engine.setops import with_set_builtins
from repro.parallel import (
    builtin_profile,
    choose_partition,
    shard_of,
    shardable_group,
)
from repro.parallel.partition import stable_hash
from repro.workloads import edge_churn, random_graph

MODES = [
    {"compile_plans": True, "columnar": True},
    {"compile_plans": True, "columnar": False},
    {"compile_plans": False, "columnar": False},
]

#: Shardable linear recursion, unshardable nonlinear recursion, negation
#: strata, and builtins — any subset stratifies over ``e/2`` and ``n/1``.
RULE_POOL = [
    "t(X, Y) :- e(X, Y).",
    "t(X, Z) :- e(X, Y), t(Y, Z).",
    "d(X, Y) :- e(X, Y).",
    "d(X, Z) :- d(X, Y), d(Y, Z).",
    "p(X) :- e(X, X).",
    "q(X) :- t(X, Y), n(Y).",
    "v(X, Y) :- e(X, Y), X != Y.",
    "s(X) :- n(X), not t(X, X).",
    "w(X) :- n(X), not s(X).",
]

_CONSTS = ["a", "b", "c", "d", "f"]
FACT_SPACE = (
    [("e", u, v) for u in _CONSTS for v in _CONSTS]
    + [("n", u) for u in _CONSTS]
)


def _database(facts):
    db = Database()
    for spec in facts:
        db.add(spec[0], *spec[1:])
    return db


def _run(program, facts, shards=1, **mode):
    ev = Evaluator(
        program, _database(facts), builtins=with_set_builtins(),
        options=EvalOptions(shards=shards, **mode),
    )
    try:
        return ev.run().interpretation.sorted_atoms()
    finally:
        ev.close()


# ---------------------------------------------------------------------------
# The property: shards=N ≡ single-process, for evaluation and maintenance
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    rule_idx=st.sets(
        st.integers(0, len(RULE_POOL) - 1), min_size=1, max_size=5
    ),
    facts=st.sets(st.sampled_from(FACT_SPACE), max_size=10),
    mode=st.sampled_from(MODES),
)
def test_evaluation_is_shard_count_invariant(rule_idx, facts, mode):
    program = parse_program(
        "\n".join(RULE_POOL[i] for i in sorted(rule_idx))
    )
    baseline = _run(program, sorted(facts), shards=1, **mode)
    for n in (2, 4):
        assert _run(program, sorted(facts), shards=n, **mode) == baseline


@settings(max_examples=6, deadline=None)
@given(
    rule_idx=st.sets(
        st.integers(0, len(RULE_POOL) - 1), min_size=1, max_size=4
    ),
    initial=st.sets(st.sampled_from(FACT_SPACE), max_size=8),
    batches=st.lists(
        st.lists(
            st.tuples(st.booleans(), st.sampled_from(FACT_SPACE)),
            min_size=1, max_size=4,
        ),
        min_size=1, max_size=3,
    ),
    mode=st.sampled_from(MODES),
)
def test_apply_delta_is_shard_count_invariant(rule_idx, initial, batches,
                                              mode):
    program = parse_program(
        "\n".join(RULE_POOL[i] for i in sorted(rule_idx))
    )
    models = {
        n: MaterializedModel(
            program, _database(sorted(initial)),
            builtins=with_set_builtins(),
            options=EvalOptions(shards=n, **mode),
        )
        for n in (1, 2, 4)
    }
    try:
        for batch in batches:
            adds = [spec for is_add, spec in batch if is_add]
            dels = [spec for is_add, spec in batch if not is_add]
            for m in models.values():
                m.apply_delta(adds=adds, dels=dels)
            baseline = models[1].interpretation.sorted_atoms()
            for n in (2, 4):
                assert models[n].interpretation.sorted_atoms() == baseline
    finally:
        for m in models.values():
            m._evaluator.close()


def test_churn_stream_is_shard_count_invariant():
    """A sustained random churn stream (the benchmark's shape)."""
    program = parse_program("""
    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).
    """)
    edges = random_graph(24, 60, seed=3)
    facts = [("e", u, v) for u, v in edges]
    batches = edge_churn(edges, n_batches=8, batch_size=2, n_nodes=24,
                         seed=4)
    m1 = MaterializedModel(program, _database(facts))
    m4 = MaterializedModel(program, _database(facts),
                           options=EvalOptions(shards=4))
    try:
        for batch in batches:
            m1.apply_delta(adds=batch.adds, dels=batch.dels)
            m4.apply_delta(adds=batch.adds, dels=batch.dels)
            assert (m4.interpretation.sorted_atoms()
                    == m1.interpretation.sorted_atoms())
    finally:
        m4._evaluator.close()


# ---------------------------------------------------------------------------
# Partitioning and the fallback matrix
# ---------------------------------------------------------------------------

class TestPartition:
    def test_stable_hash_is_process_independent(self):
        # CRC-32 of the text: a fixed value, not PYTHONHASHSEED-relative.
        assert stable_hash("n(a)") == 4072114942
        assert stable_hash("") == 0

    def test_shard_of_routes_by_partition_position(self):
        from repro.core import atom, const

        a = atom("e", const("x"), const("y"))
        owners = {
            shard_of(a, {"e": pos}, 4) for pos in (0, 1)
        }
        assert all(0 <= o < 4 for o in owners)
        # Propositional atoms route by predicate name.
        p = atom("done")
        assert 0 <= shard_of(p, {}, 4) < 4
        assert shard_of(p, {}, 4) == shard_of(p, {"done": 3}, 4)

    def test_choose_partition_picks_most_selective_position(self):
        from repro.core import atom, const
        from repro.semantics.interpretation import Interpretation

        interp = Interpretation()
        # Position 0 is constant, position 1 has 5 distinct values.
        for i in range(5):
            interp.add(atom("e", const("hub"), const(f"v{i}")))
        assert choose_partition(interp, {"e"}) == {"e": 1}

    def test_builtin_profiles(self):
        assert builtin_profile(DEFAULT_BUILTINS) == "default"
        assert builtin_profile(with_set_builtins()) == "setops"
        assert builtin_profile({**DEFAULT_BUILTINS, "magic": None}) is None


class TestFallbackMatrix:
    def _groups(self, text):
        ev = Evaluator(parse_program(text), builtins=with_set_builtins())
        return [
            (g, shardable_group(g, ev.builtins))
            for g in ev.stratification.rule_groups()
        ]

    def test_linear_recursion_is_shardable(self):
        groups = self._groups("""
        t(X, Y) :- e(X, Y).
        t(X, Z) :- e(X, Y), t(Y, Z).
        """)
        assert any(ok for _, ok in groups)

    def test_nonlinear_recursion_is_not_shardable(self):
        groups = self._groups("""
        d(X, Y) :- e(X, Y).
        d(X, Z) :- d(X, Y), d(Y, Z).
        """)
        assert not any(ok for _, ok in groups)

    def test_negation_stratum_is_not_shardable(self):
        groups = self._groups("""
        t(X, Y) :- e(X, Y).
        t(X, Z) :- e(X, Y), t(Y, Z).
        s(X) :- n(X), not t(X, X).
        """)
        flags = {
            frozenset(g.head_preds): ok for g, ok in groups
        }
        assert flags[frozenset({"t"})]
        assert not flags[frozenset({"s"})]

    def test_nonrecursive_stratum_is_not_shardable(self):
        groups = self._groups("p(X) :- e(X, X).")
        assert not any(ok for _, ok in groups)

    def test_unshardable_program_still_correct_with_shards(self):
        # Every stratum falls back; shards=4 must be a silent no-op.
        program = parse_program("""
        d(X, Y) :- e(X, Y).
        d(X, Z) :- d(X, Y), d(Y, Z).
        s(X) :- n(X), not d(X, X).
        """)
        facts = [("e", "a", "b"), ("e", "b", "a"), ("n", "a"), ("n", "c")]
        assert (_run(program, facts, shards=4)
                == _run(program, facts, shards=1))


# ---------------------------------------------------------------------------
# Worker-pool lifecycle
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_close_terminates_workers(self):
        program = parse_program("""
        t(X, Y) :- e(X, Y).
        t(X, Z) :- e(X, Y), t(Y, Z).
        """)
        ev = Evaluator(program, _database([("e", "a", "b")]),
                       options=EvalOptions(shards=2))
        ev.run()
        coord = ev._coordinator
        assert coord is not None and not coord.broken
        procs = list(coord._procs)
        assert all(p.is_alive() for p in procs)
        ev.close()
        assert all(not p.is_alive() for p in procs)
        assert ev._coordinator is None

    def test_shards_one_never_spawns(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        ev = Evaluator(program, _database([("e", "a", "b")]))
        ev.run()
        assert ev._coordinator is None
        assert ev._sharding_unavailable

    def test_provenance_disables_sharding(self):
        program = parse_program("""
        t(X, Y) :- e(X, Y).
        t(X, Z) :- e(X, Y), t(Y, Z).
        """)
        ev = Evaluator(
            program, _database([("e", "a", "b"), ("e", "b", "c")]),
            options=EvalOptions(shards=4, track_provenance=True),
        )
        model = ev.run()
        assert ev._coordinator is None
        # Provenance still works end to end.
        model.explain_str("t(a, c)")
