"""Snapshot/copy-on-write semantics (`Interpretation`, `Database`,
`VersionedModel`).

The contract the whole service layer rests on: a snapshot is an immutable
O(#predicates) view that stays **bit-identical** to the state at taking
time no matter what the writable original does afterwards — including
through the incrementally-maintained argument indexes, which are shared
until the first post-snapshot mutation of each predicate.
"""

import pytest

from repro import parse_program
from repro.core import atom, const
from repro.core.errors import EvaluationError
from repro.engine import Database
from repro.engine.maintenance import (
    MaterializedModel,
    ModelSnapshot,
    RetiredVersionError,
    VersionedModel,
)
from repro.semantics.interpretation import Interpretation


def a(pred, *names):
    return atom(pred, *[const(n) for n in names])


class TestInterpretationSnapshot:
    def test_snapshot_is_equal_then_diverges(self):
        interp = Interpretation([a("e", "x", "y"), a("p", "x")])
        snap = interp.snapshot()
        assert snap.frozen and not interp.frozen
        assert snap.sorted_atoms() == interp.sorted_atoms()
        interp.add(a("e", "y", "z"))
        interp.remove(a("p", "x"))
        assert snap.holds(a("p", "x"))
        assert not snap.holds(a("e", "y", "z"))
        assert len(snap) == 2 and len(interp) == 2
        assert a("e", "x", "y") in snap

    def test_frozen_refuses_mutation(self):
        snap = Interpretation([a("p", "x")]).snapshot()
        with pytest.raises(EvaluationError, match="frozen"):
            snap.add(a("p", "y"))
        with pytest.raises(EvaluationError, match="frozen"):
            snap.remove(a("p", "x"))

    def test_shared_indexes_stay_exact_after_cow(self):
        """An index built before the snapshot is shared; post-snapshot
        mutation must not corrupt the snapshot's view of it."""
        interp = Interpretation(
            [a("e", f"v{i}", f"v{i+1}") for i in range(10)]
        )
        # Build the position-0 index before snapshotting.
        before = list(interp.candidates("e", (0,), (const("v3"),)))
        snap = interp.snapshot()
        interp.remove(a("e", "v3", "v4"))
        interp.add(a("e", "v3", "v9"))
        assert list(snap.candidates("e", (0,), (const("v3"),))) == before
        # And the writer's own index reflects the mutation exactly.
        writer_now = {
            f.args[1].value
            for f in interp.candidates("e", (0,), (const("v3"),))
        }
        assert writer_now == {"v9"}

    def test_lazy_index_on_snapshot_matches_scan(self):
        interp = Interpretation(
            [a("e", f"v{i % 4}", f"v{i}") for i in range(12)]
        )
        snap = interp.snapshot()
        interp.add(a("e", "v0", "extra"))
        got = {
            f.args[1].value
            for f in snap.candidates("e", (0,), (const("v0"),))
        }
        want = {
            f.args[1].value for f in snap if f.args[0].value == "v0"
        }
        assert got == want and "extra" not in got

    def test_snapshot_of_snapshot(self):
        snap = Interpretation([a("p", "x")]).snapshot()
        again = snap.snapshot()
        assert again.frozen and again.sorted_atoms() == snap.sorted_atoms()

    def test_copy_is_independent_and_mutable(self):
        interp = Interpretation([a("p", "x")])
        dup = interp.copy()
        dup.add(a("p", "y"))
        assert len(interp) == 1 and len(dup) == 2


class TestDatabaseSnapshot:
    def test_snapshot_isolated_from_writer(self):
        db = Database()
        db.add("e", "x", "y")
        snap = db.snapshot()
        db.add("e", "y", "z")
        db.retract("e", "x", "y")
        assert snap.relation("e") == {("x", "y")}
        assert db.relation("e") == {("y", "z")}

    def test_frozen_database_refuses_mutation(self):
        db = Database()
        db.add("e", "x", "y")
        snap = db.snapshot()
        with pytest.raises(EvaluationError, match="frozen"):
            snap.add("e", "u", "v")
        with pytest.raises(EvaluationError, match="frozen"):
            snap.retract("e", "x", "y")


TC = parse_program("""
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
""")


def edges_db(edges):
    db = Database()
    for u, v in edges:
        db.add("e", u, v)
    return db


class TestVersionedModel:
    def test_versions_advance_and_snapshots_freeze(self):
        vm = VersionedModel(TC, edges_db([("a", "b")]))
        v1 = vm.current
        assert v1.version == 1 and v1.interpretation.frozen
        v2 = vm.add("e", "b", "c")
        assert v2.version == 2
        assert v2.holds(a("t", "a", "c"))
        assert not v1.holds(a("t", "a", "c"))       # old snapshot immutable
        assert vm.current is v2

    def test_noop_delta_does_not_publish(self):
        vm = VersionedModel(TC, edges_db([("a", "b")]))
        snap = vm.apply_delta(dels=[("e", "zz", "zz")])
        assert snap.version == 1 and vm.version == 1

    def test_retirement_and_retired_error(self):
        vm = VersionedModel(TC, edges_db([("a", "b")]), keep_versions=2)
        for i in range(4):
            vm.add("e", f"n{i}", f"m{i}")
        assert vm.version == 5
        assert vm.at(5) is vm.current
        with pytest.raises(RetiredVersionError):
            vm.at(1)
        assert vm.at(4).version == 4

    def test_pin_survives_retirement_until_release(self):
        vm = VersionedModel(TC, edges_db([("a", "b")]), keep_versions=1)
        pinned = vm.pin()                       # pins version 1
        for i in range(3):
            vm.add("e", f"n{i}", f"m{i}")
        assert vm.at(1) is pinned               # kept alive by the pin
        vm.release(1)
        with pytest.raises(RetiredVersionError):
            vm.at(1)

    def test_replace_program_publishes_over_same_database(self):
        vm = VersionedModel(TC, edges_db([("a", "b"), ("b", "c")]))
        snap = vm.replace_program(parse_program(
            "t(X, Y) :- e(X, Y).\n"
            "t(X, Z) :- e(X, Y), t(Y, Z).\n"
            "sym(X, Y) :- t(X, Y), t(Y, X).\n"
            "loop(X) :- e(X, X).\n"
        ))
        assert snap.version == 2
        assert snap.holds(a("t", "a", "c"))
        assert snap.relation("loop") == set()

    def test_maintained_equals_recompute_per_version(self):
        """Every published snapshot is exactly the model of its database."""
        from repro.engine import Evaluator

        vm = VersionedModel(TC, edges_db([("a", "b"), ("b", "c")]))
        snaps = [vm.current]
        snaps.append(vm.add("e", "c", "d"))
        snaps.append(vm.retract("e", "b", "c"))
        snaps.append(vm.apply_delta(
            adds=[("e", "b", "c")], dels=[("e", "a", "b")]
        ))
        for snap in snaps:
            scratch = Evaluator(TC, _thaw(snap.database)).run()
            assert (snap.interpretation.sorted_atoms()
                    == scratch.interpretation.sorted_atoms())


def _thaw(db: Database) -> Database:
    out = Database()
    for f in db.facts():
        out.add_atom(f)
    return out


def test_materialized_model_unaffected_by_snapshots():
    """MaterializedModel alone (no snapshots) must never pay COW costs —
    the maintenance benchmarks depend on it; this just pins behaviour."""
    m = MaterializedModel(TC, edges_db([("a", "b"), ("b", "c")]))
    m.apply_delta(adds=[("e", "c", "d")])
    assert m.last_report.strategy == "incremental"
    assert ("a", "d") in m.relation("t")
