"""Tests for interpretations and model checking, including Example 7."""

import pytest

from repro.core import (
    EvaluationError,
    Program,
    Subst,
    atom,
    clause,
    const,
    equals,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_a,
    var_s,
)
from repro.semantics import Interpretation, Universe, active_universe

x = var_a("x")
X = var_s("X")
a, b = const("a"), const("b")


class TestInterpretationBasics:
    def test_add_and_holds(self):
        m = Interpretation()
        assert m.add(atom("p", a))
        assert not m.add(atom("p", a))  # duplicate
        assert m.holds(atom("p", a))
        assert not m.holds(atom("p", b))

    def test_special_atoms_rejected(self):
        m = Interpretation()
        with pytest.raises(EvaluationError):
            m.add(equals(a, a))

    def test_non_ground_rejected(self):
        m = Interpretation()
        with pytest.raises(EvaluationError):
            m.add(atom("p", x))

    def test_set_operations(self):
        m1 = Interpretation([atom("p", a)])
        m2 = Interpretation([atom("p", b)])
        assert len(m1 | m2) == 2
        assert len(m1 & m2) == 0
        assert m1 <= (m1 | m2)

    def test_by_pred_index(self):
        m = Interpretation([atom("p", a), atom("q", b)])
        assert m.by_pred("p") == frozenset({atom("p", a)})

    def test_sorted_atoms_deterministic(self):
        m = Interpretation([atom("p", b), atom("p", a)])
        assert [str(at) for at in m.sorted_atoms()] == ["p(a)", "p(b)"]


class TestModelChecking:
    def test_fact_clause(self):
        u = Universe.build([a])
        m = Interpretation([atom("p", a)])
        assert m.satisfies_clause(fact(atom("p", a)), u)
        empty = Interpretation()
        assert not empty.satisfies_clause(fact(atom("p", a)), u)

    def test_horn_clause(self):
        u = Universe.build([a, b])
        c = horn(atom("p", x), atom("q", x))
        assert Interpretation([atom("q", a), atom("p", a)]).satisfies_clause(c, u)
        assert not Interpretation([atom("q", a)]).satisfies_clause(c, u)

    def test_quantified_clause(self):
        u = Universe.build([a, b])
        c = clause(atom("all_p", X), [(x, X)], [atom("p", x)])
        m = Interpretation([
            atom("p", a),
            atom("all_p", setvalue([])),
            atom("all_p", setvalue([a])),
        ])
        assert m.satisfies_clause(c, u)

    def test_quantified_clause_empty_set_forces_head(self):
        """(∀x ∈ ∅)p(x) is true, so all_p(∅) must be in any model."""
        u = Universe.build([a])
        c = clause(atom("all_p", X), [(x, X)], [atom("p", x)])
        m = Interpretation()  # all_p(∅) missing
        assert not m.satisfies_clause(c, u)
        witness = m.failing_instance(c, u)
        assert witness is not None
        assert witness[X] == setvalue([])

    def test_example7_no_lps_model(self):
        """Example 7: { p(a), :- (∀x∈X)p(x) } has no LPS model, because the
        goal clause is falsified at X = ∅.

        We encode the headless goal ':- (∀x∈X)p(x)' as 'false_0 :- ...'
        with false_0 required absent, and check no interpretation over the
        universe satisfies both clauses without deriving false_0.
        """
        u = Universe.build([a])
        goal = clause(atom("false_0"), [(x, X)], [atom("p", x)])
        program = Program.of(fact(atom("p", a)), goal)
        # Any model of the program must contain false_0: at X=∅ the body is
        # vacuously true.
        for bits in range(4):
            m = Interpretation()
            if bits & 1:
                m.add(atom("p", a))
            if bits & 2:
                m.add(atom("false_0"))
            if m.satisfies_program(program, u):
                assert m.holds(atom("false_0"))

    def test_satisfies_program(self):
        u = Universe.build([a, b])
        p = Program.of(
            fact(atom("q", a)),
            horn(atom("p", x), atom("q", x)),
        )
        good = Interpretation([atom("q", a), atom("p", a)])
        assert good.satisfies_program(p, u)
        bad = Interpretation([atom("q", a)])
        assert not bad.satisfies_program(p, u)


class TestActiveUniverse:
    def test_program_terms_collected(self):
        p = Program.of(fact(atom("s", setvalue([a, b]))))
        u = active_universe(p)
        assert a in u and b in u
        assert setvalue([a, b]) in u

    def test_empty_set_always_present(self):
        p = Program.of(fact(atom("p", a)))
        u = active_universe(p)
        assert setvalue([]) in u

    def test_interp_terms_collected(self):
        p = Program.of()
        m = Interpretation([atom("p", setvalue([b]))])
        u = active_universe(p, m)
        assert b in u and setvalue([b]) in u

    def test_extras(self):
        u = active_universe(Program.of(), extra_atoms=[a], extra_sets=[setvalue([a])])
        assert a in u and setvalue([a]) in u
