"""Tests for unification/matching with set terms.

The paper (Section 3.2) observes that the procedural semantics of LPS needs
*arbitrary* unifiers, not a most general one — set-term unification is
non-unitary.  These tests pin down the complete enumeration for the widths
the engine uses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    EvaluationError,
    SetExpr,
    Subst,
    app,
    atom,
    const,
    first_unifier,
    match,
    match_atom,
    setvalue,
    unify,
    unify_atoms,
    var_a,
    var_s,
)

x, y, z = var_a("x"), var_a("y"), var_a("z")
X, Y = var_s("X"), var_s("Y")
a, b, c = const("a"), const("b"), const("c")


def all_unifiers(t1, t2):
    return list(unify(t1, t2))


class TestFirstOrderFragment:
    def test_identical_terms(self):
        assert all_unifiers(a, a) == [Subst()]

    def test_clash(self):
        assert all_unifiers(a, b) == []

    def test_var_const(self):
        (sigma,) = all_unifiers(x, a)
        assert sigma[x] == a

    def test_var_var(self):
        (sigma,) = all_unifiers(x, y)
        assert sigma.apply(x) == sigma.apply(y)

    def test_apps(self):
        (sigma,) = all_unifiers(app("f", x, b), app("f", a, y))
        assert sigma[x] == a and sigma[y] == b

    def test_app_functor_clash(self):
        assert all_unifiers(app("f", x), app("g", x)) == []

    def test_occurs_check(self):
        assert all_unifiers(x, app("f", x)) == []

    def test_sort_clash_var(self):
        assert all_unifiers(x, setvalue([a])) == []
        assert all_unifiers(X, a) == []


class TestSetUnification:
    def test_two_unifiers(self):
        """{x, y} vs {a, b}: exactly the two pairings (non-unitary)."""
        sigmas = all_unifiers(SetExpr((x, y)), setvalue([a, b]))
        solutions = {(s[x], s[y]) for s in sigmas}
        assert solutions == {(a, b), (b, a)}

    def test_collapsing_unifier(self):
        """{x, y} vs {a}: both variables must take the single element."""
        sigmas = all_unifiers(SetExpr((x, y)), setvalue([a]))
        assert len(sigmas) == 1
        assert sigmas[0][x] == a and sigmas[0][y] == a

    def test_width_mismatch_fails(self):
        """{x} can never denote a two-element set."""
        assert all_unifiers(SetExpr((x,)), setvalue([a, b])) == []

    def test_empty_constructor_vs_empty_set(self):
        assert all_unifiers(SetExpr(()), setvalue([])) == [Subst()]

    def test_empty_constructor_vs_nonempty(self):
        assert all_unifiers(SetExpr(()), setvalue([a])) == []

    def test_ground_sets(self):
        assert all_unifiers(setvalue([a]), setvalue([a])) == [Subst()]
        assert all_unifiers(setvalue([a]), setvalue([b])) == []

    def test_partially_ground_constructor(self):
        sigmas = all_unifiers(SetExpr((a, x)), setvalue([a, b]))
        assert {s[x] for s in sigmas} == {b}

    def test_setvar_binds_whole_set(self):
        (sigma,) = all_unifiers(X, setvalue([a, b]))
        assert sigma[X] == setvalue([a, b])

    def test_expr_vs_expr(self):
        sigmas = all_unifiers(SetExpr((x,)), SetExpr((y,)))
        assert any(s.apply(x) == s.apply(y) for s in sigmas)

    def test_expr_vs_expr_constants(self):
        assert all_unifiers(SetExpr((a,)), SetExpr((b,))) == []
        assert all_unifiers(SetExpr((a, x)), SetExpr((a, b)))

    def test_width_guard(self):
        wide = SetExpr(tuple(var_a(f"v{i}") for i in range(12)))
        with pytest.raises(EvaluationError):
            list(unify(wide, setvalue([const(i) for i in range(12)])))

    def test_unifiers_actually_unify(self):
        pattern = SetExpr((x, y, a))
        target = setvalue([a, b, c])
        for sigma in unify(pattern, target):
            assert sigma.apply(pattern) == target


class TestMatching:
    def test_match_requires_ground_target(self):
        with pytest.raises(EvaluationError):
            list(match(x, y))

    def test_match_binds_pattern_only(self):
        (sigma,) = list(match(app("f", x), app("f", a)))
        assert sigma[x] == a

    def test_match_atom(self):
        pattern = atom("p", x, X)
        target = atom("p", a, setvalue([a, b]))
        (sigma,) = list(match_atom(pattern, target))
        assert sigma[x] == a and sigma[X] == setvalue([a, b])

    def test_match_atom_pred_mismatch(self):
        assert list(match_atom(atom("p", x), atom("q", a))) == []

    def test_match_set_pattern(self):
        sigmas = list(match(SetExpr((x, y)), setvalue([a, b])))
        assert len(sigmas) == 2

    def test_first_unifier(self):
        assert first_unifier(a, b) is None
        assert first_unifier(x, a) is not None


# -- property-based ----------------------------------------------------------

ground_atoms = st.sampled_from([a, b, c, app("f", a), app("f", b)])
ground_sets = st.frozensets(ground_atoms, max_size=3).map(setvalue)
ground_terms = st.one_of(ground_atoms, ground_sets)


@given(t=ground_terms)
def test_unify_reflexive(t):
    assert list(unify(t, t)) == [Subst()]


@given(t1=ground_terms, t2=ground_terms)
def test_unify_ground_iff_equal(t1, t2):
    sigmas = list(unify(t1, t2))
    assert bool(sigmas) == (t1 == t2)


@settings(max_examples=50)
@given(target=ground_sets)
def test_set_pattern_match_soundness(target):
    """Every enumerated match really instantiates the pattern to the target."""
    pattern = SetExpr((x, y))
    for sigma in match(pattern, target):
        assert sigma.apply(pattern) == target


@settings(max_examples=50)
@given(target=st.frozensets(ground_atoms, min_size=1, max_size=2).map(setvalue))
def test_set_pattern_match_completeness_width2(target):
    """{x, y} matches any set of size 1 or 2; the enumeration is non-empty
    and covers all element pairs."""
    sigmas = list(match(SetExpr((x, y)), target))
    elems = set(target)
    expected = {
        (e1, e2)
        for e1 in elems
        for e2 in elems
        if frozenset({e1, e2}) == frozenset(elems)
    }
    assert {(s[x], s[y]) for s in sigmas} == expected
