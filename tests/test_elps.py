"""Section 5 / Theorem 9: ELPS — arbitrarily nested finite sets.

ELPS drops the two-sorted typing: the Herbrand universe (Definition 13)
closes atoms under finite subsets at every depth, function symbols still
produce atoms only, and the minimal-model/fixpoint results carry over.
"""

import pytest

from repro.core import (
    MODE_ELPS,
    Program,
    SortError,
    atom,
    clause,
    const,
    fact,
    horn,
    member,
    pos,
    setvalue,
    var_u,
)
from repro.engine import Evaluator, solve
from repro.lang import parse_program
from repro.semantics import Universe, least_fixpoint, nested_set_values

a, b = const("a"), const("b")
U, V, W = var_u("U"), var_u("V"), var_u("W")


def nested(x):
    return setvalue([x])


class TestNestedValues:
    def test_depth2_value(self):
        v = setvalue([setvalue([a]), b])
        assert v.is_ground()
        from repro.core import nesting_depth

        assert nesting_depth(v) == 2

    def test_lps_mode_rejects_depth2(self):
        p = Program.of(fact(atom("p", nested(nested(a)))))
        with pytest.raises(SortError):
            p.validate()

    def test_elps_mode_accepts(self):
        p = Program.of(fact(atom("p", nested(nested(a)))), mode=MODE_ELPS)
        p.validate()

    def test_function_range_still_atoms(self):
        """Even in ELPS, function symbols map into atoms (Section 5's
        requirement keeping Herbrand models intact — Example 8)."""
        from repro.core import app

        with pytest.raises(SortError):
            app("f", setvalue([a]))


class TestUntypedVariables:
    def test_untyped_var_ranges_over_everything(self):
        p = Program.of(
            fact(atom("thing", a)),
            fact(atom("thing", nested(a))),
            fact(atom("thing", nested(nested(a)))),
            horn(atom("copy", U), atom("thing", U)),
            mode=MODE_ELPS,
        )
        m = solve(p)
        assert len(m.relation("copy")) == 3

    def test_membership_at_depth(self):
        p = Program.of(
            fact(atom("deep", setvalue([nested(a), b]))),
            horn(atom("elem", U), atom("deep", V), member(U, V)),
            mode=MODE_ELPS,
        )
        m = solve(p)
        rel = m.relation("elem")
        assert (frozenset({"a"}),) in rel
        assert ("b",) in rel

    def test_quantifier_over_nested_set(self):
        p = Program.of(
            fact(atom("fam", setvalue([setvalue([a]), setvalue([a, b])]))),
            clause(
                atom("all_contain_a", U),
                [(var_u("m"), U)],
                [atom("fam", U), member(a, var_u("m"))],
            ),
            mode=MODE_ELPS,
        )
        m = solve(p)
        fam = setvalue([setvalue([a]), setvalue([a, b])])
        assert m.holds(atom("all_contain_a", fam))


class TestTheorem9:
    def test_fixpoint_equals_minimal_model_nested(self):
        """Theorem 9: M_P = lfp(T_P) with a nested-set universe."""
        p = Program.of(
            fact(atom("p", nested(a))),
            horn(atom("q", U), atom("p", U)),
            mode=MODE_ELPS,
        )
        atoms = [a]
        sets = nested_set_values(atoms, depth=2, max_size=1)
        universe = Universe((a,), tuple(sets))
        result = least_fixpoint(p, universe)
        m = result.interpretation
        assert m.holds(atom("q", nested(a)))
        assert m.satisfies_program(p, universe)

    def test_vacuous_quantification_at_depth(self):
        p = Program.of(
            fact(atom("s", setvalue([]))),
            clause(atom("allq", U), [(var_u("m"), U)],
                   [atom("s", U), atom("q", var_u("m"))], ),
            mode=MODE_ELPS,
        )
        m = solve(p)
        assert m.holds(atom("allq", setvalue([])))


class TestElpsParsing:
    def test_parse_nested_program(self):
        p = parse_program("""
            #elps
            family({{a}, {a, b}}).
            member_set(M) :- family(F), M in F.
        """)
        m = solve(p)
        assert (frozenset({"a"}),) in m.relation("member_set")
        assert (frozenset({"a", "b"}),) in m.relation("member_set")

    def test_elps_powerset_iteration(self):
        """Nested grouping: collect the sets that contain a given atom."""
        p = parse_program("""
            #elps
            s({a, b}). s({a}). s({c}).
            holds_a(S) :- s(S), a in S.
            witness(<S>) :- holds_a(S).
        """)
        m = solve(p)
        assert m.relation("witness") == {
            (frozenset({frozenset({"a", "b"}), frozenset({"a"})}),)
        }
