"""Tests for the synthetic workload generators (determinism & shape)."""

from repro.workloads import (
    chain_graph,
    cycle_graph,
    grid_graph,
    nested_relation_rows,
    number_set,
    parts_database,
    parts_world,
    random_graph,
    random_sets,
    set_database,
)


class TestRandomSets:
    def test_deterministic(self):
        assert random_sets(5, 10, seed=3) == random_sets(5, 10, seed=3)
        assert random_sets(5, 10, seed=3) != random_sets(5, 10, seed=4)

    def test_shape(self):
        out = random_sets(7, 10, min_size=1, max_size=4, seed=0)
        assert len(out) == 7
        assert all(1 <= len(s) <= 4 or len(s) <= 4 for s in out)
        assert all(all(0 <= e < 10 for e in s) for s in out)

    def test_database(self):
        db = set_database("s", 5, 10, seed=1)
        assert len(db.relation("s")) <= 5  # dedup possible


class TestGraphs:
    def test_chain(self):
        edges = chain_graph(3)
        assert edges == [("v0", "v1"), ("v1", "v2"), ("v2", "v3")]

    def test_cycle(self):
        edges = cycle_graph(3)
        assert ("v2", "v0") in edges
        assert len(edges) == 3

    def test_grid(self):
        edges = grid_graph(2, 2)
        assert len(edges) == 4

    def test_random_graph_no_self_loops(self):
        edges = random_graph(10, 20, seed=2)
        assert len(edges) == 20
        assert all(u != v for u, v in edges)


class TestPartsWorld:
    def test_structure(self):
        w = parts_world(depth=2, fanout=3)
        # 1 root + 3 children (assemblies? no: depth 2 => children are
        # internal at level 1, leaves at level 2).
        assert len(w.parts) == 4      # root + 3 level-1 assemblies
        assert len(w.cost) == 9       # 3*3 leaves

    def test_expected_costs_consistent(self):
        w = parts_world(depth=3, fanout=2, seed=5)
        for obj, comps in w.parts.items():
            assert w.expected[obj] == sum(w.expected[c] for c in comps)

    def test_database_loads(self):
        w = parts_world(depth=2, fanout=2)
        db = parts_database(w)
        assert len(db.relation("parts")) == len(w.parts)
        assert len(db.relation("cost")) == len(w.cost)


class TestOtherGenerators:
    def test_number_set(self):
        s = number_set(8, seed=1)
        assert len(s) == 8
        assert s == number_set(8, seed=1)

    def test_nested_relation_rows(self):
        rows = nested_relation_rows(4, 3, seed=0)
        assert len(rows) == 4
        assert all(isinstance(r[1], frozenset) for r in rows)
