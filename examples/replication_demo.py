"""Replication & failover, end to end: leader + 2 followers, kill,
promote, re-query.

Starts a durable leader serving the line protocol, attaches two
followers — each tailing the leader's WAL into its own data directory —
and drives writes through a :class:`ReplicaClient`, whose reads fan out
across the followers with read-your-writes guaranteed by version tokens.
Then the leader "dies" (a hard server stop), :func:`promote_best`
fences the old lineage and opens the most caught-up follower for writes,
the surviving follower retargets to the new leader, and the same client
keeps reading — with every acknowledged write intact and versions still
monotone.

Run:  PYTHONPATH=src python examples/replication_demo.py
"""

import tempfile
from pathlib import Path

from repro.replication import FollowerService, ReplicaClient, promote_best
from repro.server import QueryService, run_in_thread
from repro.replication import ReplicationHub

PROGRAM = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        leader = QueryService(
            PROGRAM, data_dir=root / "leader", fsync="never",
            ack_replicas=1,          # a write is acked once 1 follower has it
        )
        ReplicationHub.attach(leader)
        leader_handle = run_in_thread(leader)
        print(f"leader on {leader_handle.addr} "
              f"(epoch {leader.model.epoch})")

        followers = {}
        handles = {}
        for name in ("f1", "f2"):
            f = FollowerService(
                leader_handle.addr, root / name, fsync="never",
                read_timeout=0.5, backoff_initial=0.05,
            )
            followers[name] = f
            handles[name] = run_in_thread(f.start())
            print(f"follower {name} on {handles[name].addr} "
                  f"(applied v{f.model.version})")

        client = ReplicaClient(
            leader_handle.addr,
            [handles[n].addr for n in followers],
        )
        for u, v in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]:
            r = client.assert_fact(f"e({u}, {v})")
            assert r.ok, r.error
        print(f"wrote 4 edges, write token v{client.last_write_version}")
        r = client.read("t(a, X)")      # served by a follower, synced
        reach = sorted(row["X"] for row in r.data["rows"])
        print(f"reachable from a (follower read, v{r.version}): {reach}")

        # -- the leader dies ------------------------------------------------
        leader_handle.stop()
        leader.shutdown()
        print("\nleader killed")

        best, role = promote_best([handles[n].addr for n in followers])
        print(f"promoted {best[0]}:{best[1]}: role={role['role']} "
              f"version={role['version']} epoch={role['epoch']}")
        promoted = next(
            n for n in followers
            if (handles[n].host, handles[n].port) == best
        )
        survivor = next(n for n in followers if n != promoted)
        followers[survivor].retarget(best)
        client.set_leader(best)

        r = client.assert_fact("e(e, f)")
        assert r.ok, r.error
        r = client.read("t(a, X)")
        reach = sorted(row["X"] for row in r.data["rows"])
        print(f"post-failover reach from a (v{r.version}): {reach}")
        assert "f" in reach and r.version > client.last_write_version - 1

        for n in followers:
            handles[n].stop()
            followers[n].stop()
        client.close()
        print("\nevery acknowledged write survived the failover; "
              "versions never regressed")


if __name__ == "__main__":
    main()
