"""LDL grouping and the Section 6 translations (Theorems 10 and 11).

Shows the same query written three ways and verified equivalent:

1. an LDL grouping clause ``bom(P, <C>) :- component(P, C)`` run natively;
2. its translation to ELPS with stratified negation (Theorem 11);
3. a Horn + union program and its pure-ELPS translation (Theorem 10).

Run:  python examples/ldl_grouping.py
"""

from repro import parse_program
from repro.core import Program, atom, fact, horn, setvalue, var_s
from repro.core import const
from repro.engine import Evaluator
from repro.engine.builtins import default_builtins
from repro.engine.setops import with_set_builtins
from repro.lang.pretty import pretty_program
from repro.transform import from_horn_union, grouping_to_elps


def run(program, pure=False):
    builtins = default_builtins() if pure else with_set_builtins()
    return Evaluator(program, builtins=builtins).run()


def main() -> None:
    print("== 1. native LDL grouping (Definition 14) ==")
    ldl = parse_program("""
        component(car, wheel). component(car, engine).
        component(car, brake). component(bike, wheel).
        component(bike, brake).
        bom(P, <C>) :- component(P, C).
    """)
    native = run(ldl)
    for p, comps in sorted(native.relation("bom")):
        print(f"  bom({p}, {sorted(comps)})")

    print("\n== 2. Theorem 11: grouping -> ELPS with stratified negation ==")
    translated = grouping_to_elps(ldl)
    print(pretty_program(translated))
    # The translation needs candidate sets in the active domain: seed all
    # subsets of the component universe.
    import itertools

    comps = ["wheel", "engine", "brake"]
    seeds = []
    for k in range(len(comps) + 1):
        for combo in itertools.combinations(comps, k):
            seeds.append(fact(atom("cand", setvalue(map(const, combo)))))
    m2 = run(translated + Program.of(*seeds))
    assert m2.relation("bom") == native.relation("bom")
    print("-> same bom relation as native grouping:", len(m2.relation('bom')),
          "rows")

    print("\n== 3. Theorem 10: Horn + union -> pure ELPS ==")
    X, Y, Z = var_s("X"), var_s("Y"), var_s("Z")
    horn_union = Program.of(
        fact(atom("s", setvalue([const("wheel")]))),
        fact(atom("s", setvalue([const("engine")]))),
        horn(atom("u", X, Y, Z), atom("s", X), atom("s", Y),
             atom("union", X, Y, Z)),
    )
    m3 = run(horn_union)                       # union as a builtin
    elps = from_horn_union(horn_union)         # union axiomatised away
    print(pretty_program(elps))
    union_sets = {row[2] for row in m3.relation("u")}
    seeds = Program.of(*(
        fact(atom("domset", setvalue(map(const, s))))
        for s in sorted(map(sorted, union_sets))
    ))
    m4 = run(elps + seeds, pure=True)          # no set builtins at all
    assert m3.relation("u") == m4.relation("u")
    print("-> the axiomatised program derives the same u/3 relation "
          f"({len(m4.relation('u'))} rows) with no union builtin.")


if __name__ == "__main__":
    main()
