"""Set construction: Theorem 8's impossibility, then Section 4.2's escape.

Part 1 demonstrates the theorem's probe: under minimal-model semantics a
predicate ``B(X) ⇔ X = {x | A(x)}`` cannot exist, because least models grow
monotonically with the program while the intended B must *shrink* on old
sets when A gains witnesses.

Part 2 runs the paper's stratified-negation construction::

    C(X) :- X ⊊ Y ∧ (∀y∈Y) A(y)
    B(X) :- (∀x∈X) A(x) ∧ ¬C(X)

and shows B now tracks the A-extension exactly.

Run:  python examples/set_construction.py
"""

from repro.core import Program, atom, const, fact, setvalue
from repro.engine import Evaluator
from repro.engine.setops import with_set_builtins
from repro.lang.pretty import pretty_program
from repro.transform import setof_program


def run(program):
    return Evaluator(program, builtins=with_set_builtins()).run()


def main() -> None:
    a, b = const("ant"), const("bee")

    print("== Part 1: the Theorem 8 probe ==")
    # The naive attempt: B(X) :- (forall x in X) A(x).
    from repro.core import clause, var_a, var_s

    x, X = var_a("x"), var_s("X")
    naive = Program.of(clause(atom("b", X), [(x, X)], [atom("a", x)]))
    p1 = Program.of(fact(atom("a", a))) + naive
    p2 = Program.of(fact(atom("a", a)), fact(atom("a", b))) + naive
    m1, m2 = run(p1), run(p2)
    print("P1 = {A(ant)}:        B holds for",
          sorted(({tuple(sorted(s[0])) for s in m1.relation('b')})))
    print("P2 = {A(ant),A(bee)}: B holds for",
          sorted(({tuple(sorted(s[0])) for s in m2.relation('b')})))
    print("-> B holds for every SUBSET of the witnesses, and adding A(bee)")
    print("   cannot retract B({ant}): minimal models only grow (Theorem 8).")

    print("\n== Part 2: Section 4.2, with stratified negation ==")
    program = setof_program(
        "a", "b", base=Program.of(fact(atom("a", a)), fact(atom("a", b)))
    )
    print(pretty_program(program))
    m = run(program)
    result = {tuple(sorted(row[0])) for row in m.relation("b")}
    print("\nB holds exactly for:", sorted(result))
    assert result == {("ant", "bee")}

    # And re-running the probe: the answer tracks the A-extension.
    small = setof_program("a", "b", base=Program.of(fact(atom("a", a))))
    m_small = run(small)
    got = {tuple(sorted(row[0])) for row in m_small.relation("b")}
    print("with only A(ant):    ", sorted(got))
    assert got == {("ant",)}
    print("-> stratified negation supplies the closed-world step that")
    print("   minimal-model semantics cannot (end of Section 4.2).")


if __name__ == "__main__":
    main()
