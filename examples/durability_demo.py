"""Durability demo: write, ``kill -9``, recover, re-query.

A child process opens a :class:`~repro.storage.DurableModel` over a
transitive-closure program and commits edge-churn batches in a loop,
printing each acknowledged version.  The parent lets it run briefly, then
sends it **SIGKILL** — no atexit handlers, no flush-on-exit, the real
crash — and recovers the data directory in-process:

* the recovered version equals the last version the child *acknowledged*
  (a torn final WAL record, if the kill landed mid-append, is quarantined);
* the recovered model answers queries identically to a from-scratch
  evaluation of the surviving facts;
* writing continues with monotonically increasing versions.

Run:  PYTHONPATH=src python examples/durability_demo.py
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import Evaluator
from repro.engine.setops import with_set_builtins
from repro.storage import DurableModel

WORKER = """\
import sys
from repro import parse_program
from repro.engine import Database
from repro.engine.setops import with_set_builtins
from repro.storage import DurableModel
from repro.workloads import crash_recovery

data_dir = sys.argv[1]
plan = crash_recovery(n_nodes=10, n_edges=20, n_batches=400,
                      batch_size=2, seed=7)
db = Database()
for spec in plan.initial_facts:
    db.add(*spec)
model = DurableModel(parse_program(plan.program), data_dir, db,
                     builtins=with_set_builtins(), checkpoint_every=50)
batches = list(plan.batches)
i = 0
while True:   # loop the stream forever; the parent will SIGKILL us
    b = batches[i % len(batches)]
    snap = model.apply_delta(adds=b.adds, dels=b.dels)
    print(f"acked v{snap.version}", flush=True)
    i += 1
"""


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="lps-durability-demo-"))
    print(f"durable store: {data_dir}")

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    child = subprocess.Popen(
        [sys.executable, "-c", WORKER, str(data_dir)],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": src_root},
    )
    acked = 0
    deadline = time.time() + 15
    while time.time() < deadline:
        line = child.stdout.readline()
        if line.startswith("acked v"):
            acked = int(line.strip()[7:])
        if acked >= 40:      # enough history to make recovery interesting
            break
    print(f"child acknowledged through v{acked} — kill -9")
    child.kill()             # SIGKILL: no cleanup, no flushing
    child.wait()

    model = DurableModel.recover(data_dir, builtins=with_set_builtins())
    print(f"recovered at v{model.version} "
          f"({len(model.current.interpretation)} model atoms)")
    assert model.version >= acked, (
        f"recovered v{model.version} < acknowledged v{acked}: "
        "an acknowledged batch was lost!"
    )

    # The recovered model is bit-identical to from-scratch evaluation of
    # the surviving facts.
    fresh = Evaluator(
        model.program, model._materialized.database,
        builtins=with_set_builtins(),
    ).run()
    assert model.current.interpretation == fresh.interpretation
    print("recovered model == from-scratch evaluation of surviving facts")

    closure = sorted(model.current.relation("t"))
    print(f"re-query: {len(closure)} closure facts, e.g. "
          f"{closure[:3]} ...")

    # Writes resume with monotone versions.
    snap = model.apply_delta(adds=[("e", "v0", "v9")])
    print(f"post-recovery write published v{snap.version}")
    assert snap.version == model.version
    model.close()
    print("ok")


if __name__ == "__main__":
    main()
