"""Serving a maintained model: one churn writer, several reader clients.

Starts the line-protocol TCP server in-process over a transitive-closure
program, then runs four reader clients on their own threads — each
speaking the wire protocol over a real socket — while the main thread
churns the edge relation through the serialized writer.  Every response
carries the snapshot version it was answered at, so the output shows
readers observing a consistent, monotonically advancing sequence of
published versions while the writer runs flat out.

Run:  PYTHONPATH=src python examples/server_demo.py
"""

import threading

from repro.server import LineClient, QueryService, run_in_thread
from repro.workloads import edge_churn, query_stream, random_graph

PROGRAM = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""

N_NODES, N_EDGES = 16, 36
N_READERS, QUERIES_EACH = 4, 12


def reader(host, port, stream, name, lines):
    with LineClient(host, port) as client:
        versions = []
        answers = 0
        for goal in stream:
            response = client.query(goal)
            assert response.ok, response.error
            versions.append(response.version)
            answers += len(response.data["rows"])
        assert versions == sorted(versions), "versions went backwards!"
        lines.append(
            f"  {name}: {len(stream)} queries, {answers} answers, "
            f"versions v{versions[0]} → v{versions[-1]}"
        )


def main() -> None:
    service = QueryService(PROGRAM)
    edges = random_graph(N_NODES, N_EDGES, seed=42)
    service.apply_delta(adds=[("e", u, v) for u, v in edges])
    print(f"model v{service.model.version}: {len(edges)} edges, "
          f"{len(service.model.current.relation('t'))} closure facts")

    with run_in_thread(service) as server:
        print(f"serving on {server.host}:{server.port}")
        lines: list[str] = []
        threads = [
            threading.Thread(
                target=reader,
                args=(
                    server.host, server.port,
                    query_stream(QUERIES_EACH, N_NODES, pred="t",
                                 seed=100 + i),
                    f"reader-{i}", lines,
                ),
            )
            for i in range(N_READERS)
        ]
        for t in threads:
            t.start()

        # The single writer churns edges while the readers are in flight.
        n_batches = 0
        for batch in edge_churn(edges, n_batches=25, batch_size=2,
                                n_nodes=N_NODES, seed=7):
            service.apply_delta(adds=batch.adds, dels=batch.dels)
            n_batches += 1
        for t in threads:
            t.join()

        print(f"writer: {n_batches} churn batches, "
              f"now at v{service.model.version} "
              f"(last strategy: {service.model.last_report.strategy})")
        print("readers (each over its own TCP connection):")
        for line in sorted(lines):
            print(line)

    stats = service.stats_data()
    print(f"service totals: {stats['queries']} queries, "
          f"{stats['answers']} answers, {stats['errors']} errors")
    service.shutdown()


if __name__ == "__main__":
    main()
