"""Nested relations and Example 4: unnest as an LPS rule.

Builds a non-1NF relation, runs the paper's Example 4 rule
``S(x, y) :- R(x, Y) ∧ y ∈ Y`` on the engine, and checks it against the
[JS82] algebra operator.  Then round-trips with ``nest`` (LDL grouping).

Run:  python examples/nested_unnest.py
"""

from repro import parse_program
from repro.engine import Evaluator
from repro.nested import (
    ATOMIC,
    NestedRelation,
    Schema,
    nest,
    nest_program,
    relation_from_model,
    relation_to_database,
    unnest,
    unnest_program,
)


def main() -> None:
    # A non-1NF relation: course -> set of enrolled students.
    schema = Schema.of("course", "students*")
    enrolment = NestedRelation(schema)
    enrolment.insert("databases", {"ann", "bob", "eve"})
    enrolment.insert("logic", {"ann", "dan"})
    enrolment.insert("ethics", set())

    print("== nested relation R ==")
    print(enrolment.pretty())

    # Example 4 as a rule, via the bridge helper...
    program = unnest_program(schema, "students", "r", "s")
    db = relation_to_database(enrolment, "r")
    model = Evaluator(program, db).run()
    via_rule = relation_from_model(
        model, "s", schema.with_kind("students", ATOMIC)
    )

    # ...and via the algebra operator.
    via_algebra = unnest(enrolment, "students")

    print("\n== unnest via the LPS rule S(x,y) :- R(x,Y), y in Y ==")
    print(via_rule.pretty())
    assert via_rule == via_algebra, "rule and algebra must agree"
    print("\nLPS rule agrees with the [JS82] algebra operator.")

    # The inverse: nest is LDL grouping (Definition 14).
    regroup = nest_program(via_rule.schema, "students", "s", "g")
    db2 = relation_to_database(via_rule, "s")
    model2 = Evaluator(regroup, db2).run()
    back = relation_from_model(model2, "g", schema)
    print("\n== re-nested via grouping g(C, <S>) :- s(C, S) ==")
    print(back.pretty())
    print("\nNote: 'ethics' is gone — unnest drops empty sets, the classical"
          "\ninformation loss the nested algebra literature flags.")
    assert back == nest(via_algebra, "students")

    # The same in pure surface syntax.
    print("\n== the same in surface syntax ==")
    p = parse_program("""
        r(databases, {ann, bob, eve}). r(logic, {ann, dan}).
        s(C, E) :- r(C, S), E in S.
        pairs(<C>) :- s(C, ann).
    """)
    m = Evaluator(p).run()
    print("courses ann takes:", sorted(m.relation("pairs"))[0][0])


if __name__ == "__main__":
    main()
