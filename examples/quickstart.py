"""Quickstart: LPS in five minutes.

Covers the public API end to end: parse a program with set terms and
restricted universal quantifiers (the paper's Examples 1-3), evaluate it
bottom-up, query the model, and ask the same questions goal-directedly.

Run:  python examples/quickstart.py
"""

from repro import parse_program
from repro.engine import Evaluator, TopDownProver
from repro.engine.setops import with_set_builtins
from repro.lang import parse_atom

PROGRAM = """
% A small extensional database of sets.
s({1, 2}).  s({2, 3}).  s({4, 5}).  s({}).

% Example 1 of the paper: disjointness, declaratively.
% No iteration code, no list plumbing - just the logical definition.
disj(X, Y) :- s(X), s(Y), forall A in X (forall B in Y (A != B)).

% Example 2: subset, using the primitive membership predicate.
subset(X, Y) :- s(X), s(Y), forall A in X (A in Y).

% Example 3: union, with a disjunctive covering condition.  The parser
% compiles the disjunction away with the paper's Theorem 6 construction.
un(X, Y, Z) :- s(X), s(Y), s(Z),
               forall A in X (A in Z), forall B in Y (B in Z),
               forall C in Z (C in X or C in Y).
"""


def main() -> None:
    program = parse_program(PROGRAM)
    print("== program ==")
    print(PROGRAM.strip())

    # Bottom-up evaluation to the least model (active-domain semantics).
    model = Evaluator(program, builtins=with_set_builtins()).run()

    print("\n== queries against the least model ==")
    for query in [
        "disj({1, 2}, {4, 5})",   # true
        "disj({1, 2}, {2, 3})",   # false: they share 2
        "disj({}, {2, 3})",       # true: the empty set is disjoint from all
        "subset({}, {1, 2})",     # true: vacuous quantification
        "un({1, 2}, {2, 3}, {1, 2, 3})",  # would need {1,2,3} in s/1 ...
    ]:
        print(f"  {query:32s} -> {model.holds_str(query)}")

    print("\n== bindings ==")
    for row in model.query_str("disj({1, 2}, W)"):
        print(f"  disj({{1, 2}}, W) with W = {sorted(row['W'])}")

    # The same program, proved goal-directedly (Section 3.2's procedural
    # semantics, with non-unitary set unification).
    print("\n== top-down proofs ==")
    prover = TopDownProver(program, builtins=with_set_builtins())
    for text in ["disj({1, 2}, {4, 5})", "subset({1, 2}, {2, 3})"]:
        goal = parse_atom(text)
        print(f"  ?- {text:30s} -> {prover.holds(goal)}")

    print("\nreport:", model.report.rounds, "rounds,",
          model.report.derived, "atoms derived")


if __name__ == "__main__":
    main()
