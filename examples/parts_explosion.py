"""Parts explosion — the paper's Example 6 at a realistic scale.

``parts(x, Y)`` is a non-1NF relation: assembly ``x`` is built from the SET
of components ``Y``.  ``cost(x, n)`` prices the leaf parts.  The LPS rules
roll costs up the assembly tree by recursive summation over sets — the
``sum-costs`` recursion of Example 6, using the deterministic
``choose_min`` set decomposition (one canonical disjoint-union split per
set; see DESIGN.md).

Run:  python examples/parts_explosion.py [depth] [fanout]
"""

import sys
import time

from repro import parse_program
from repro.engine import Evaluator
from repro.engine.setops import with_set_builtins
from repro.workloads import parts_database, parts_world

RULES = """
% cost of a thing: base cost for leaves, rolled-up cost for assemblies
item_cost(P, C) :- cost(P, C).
item_cost(P, C) :- obj_cost(P, C).

% demand-driven enumeration of the suffix subsets we must sum over
need(S) :- parts(P, S).
need(Y) :- need(Z), choose_min(X, Y, Z).

% Example 6's sum-costs recursion (deterministic decomposition)
sum_costs({}, 0).
sum_costs(Z, K) :- need(Z), choose_min(P, Y, Z),
                   item_cost(P, C), sum_costs(Y, M), M + C = K.

% Example 6's head rule: the cost of an object is the sum of its parts
obj_cost(P, C) :- parts(P, S), sum_costs(S, C).
"""


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    fanout = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    world = parts_world(depth=depth, fanout=fanout, seed=7)
    db = parts_database(world)
    print(f"parts world: depth={depth} fanout={fanout} -> "
          f"{len(world.parts)} assemblies, {len(world.cost)} leaf parts")

    program = parse_program(RULES)
    start = time.perf_counter()
    model = Evaluator(program, db, builtins=with_set_builtins()).run()
    elapsed = time.perf_counter() - start

    derived = dict(model.relation("obj_cost"))
    root = "p0"
    print(f"evaluated in {elapsed:.3f}s "
          f"({model.report.rounds} rounds, {model.report.derived} atoms)")
    print(f"cost of root assembly {root}: {derived[root]}")

    # Validate every roll-up against the analytically computed answer.
    mismatches = [
        (obj, derived.get(obj), world.expected[obj])
        for obj in world.parts
        if derived.get(obj) != world.expected[obj]
    ]
    if mismatches:
        raise SystemExit(f"MISMATCHES: {mismatches[:5]}")
    print(f"all {len(world.parts)} assembly costs match the expected values")


if __name__ == "__main__":
    main()
